"""Tests for latency attribution spans and the SLO report."""

import pytest

from repro.serve import MetricsLog, RequestSpan, percentile


def span(rid=1, *, priority=0, status="ok", t_submit=0.0, t_admit=0.0,
         t_select=0.0, t_exec0=0.0, t_exec1=0.0, t_done=0.0, batch_size=0,
         worker=-1, batch_id=-1):
    return RequestSpan(
        rid=rid, backend="dft", library="numpy", n=64, priority=priority,
        status=status, worker=worker, batch_id=batch_id, batch_size=batch_size,
        t_submit=t_submit, t_admit=t_admit, t_select=t_select,
        t_exec0=t_exec0, t_exec1=t_exec1, t_done=t_done,
    )


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value_is_every_percentile(self):
        for q in (1, 50, 95, 99, 100):
            assert percentile([7.0], q) == 7.0

    def test_nearest_rank_on_known_list(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_rank_is_ceiled(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 51) == 3.0

    def test_returns_an_observed_value(self):
        values = [0.1, 0.9, 10.0]
        for q in (1, 33, 50, 66, 99):
            assert percentile(values, q) in values


class TestRequestSpanAttribution:
    def test_executed_span_splits_into_three_stages(self):
        s = span(
            t_submit=0.9, t_admit=1.0, t_select=1.5,
            t_exec0=1.6, t_exec1=2.0, t_done=2.1,
        )
        assert s.queue_wait_s == pytest.approx(0.5)
        assert s.batch_wait_s == pytest.approx(0.1)
        assert s.execute_s == pytest.approx(0.4)
        assert s.total_s == pytest.approx(1.2)

    def test_never_executed_span_has_zero_stage_times(self):
        s = span(status="shed", t_submit=1.0, t_admit=1.0, t_done=1.5)
        assert s.queue_wait_s == 0.0
        assert s.batch_wait_s == 0.0
        assert s.execute_s == 0.0
        assert s.total_s == pytest.approx(0.5)

    def test_as_dict_is_json_shaped(self):
        d = span(batch_size=3).as_dict()
        assert d["rid"] == 1
        assert d["batch_size"] == 3
        assert {"queue_wait_s", "batch_wait_s", "execute_s", "total_s"} <= set(d)


class TestMetricsLog:
    def test_record_many_equals_repeated_record(self):
        spans = [span(rid=r, t_submit=float(r), t_done=float(r) + 1) for r in range(3)]
        one = MetricsLog()
        for s in spans:
            one.record(s)
        many = MetricsLog()
        many.record_many(spans)
        assert one.spans() == many.spans()
        assert one.t_start == many.t_start == 0.0

    def test_t_start_is_the_earliest_submission(self):
        log = MetricsLog()
        log.record(span(rid=2, t_submit=5.0, t_done=6.0))
        log.record(span(rid=1, t_submit=2.0, t_done=3.0))
        assert log.t_start == 2.0

    def test_slo_report_counts_every_status(self):
        log = MetricsLog()
        log.record_many([
            span(rid=1, priority=0, status="ok", t_submit=0.0, t_done=1.0),
            span(rid=2, priority=0, status="ok", t_submit=0.0, t_done=2.0),
            span(rid=3, priority=0, status="deadline", t_submit=0.0, t_done=0.5),
            span(rid=4, priority=1, status="shed", t_submit=0.0, t_done=0.1),
            span(rid=5, priority=1, status="rejected", t_submit=0.0, t_done=0.1),
            span(rid=6, priority=2, status="error", t_submit=0.0, t_done=0.1),
        ])
        report = log.slo_report({"admitted": 5, "rejected": 1})
        assert report["requests"] == 6
        assert report["completed"] == 2
        assert set(report["classes"]) == {"interactive", "batch", "best_effort"}
        interactive = report["classes"]["interactive"]
        assert interactive["submitted"] == 3
        assert interactive["completed"] == 2
        assert interactive["shed_deadline"] == 1
        assert interactive["p50_ms"] <= interactive["p95_ms"] <= interactive["p99_ms"]
        assert interactive["p50_ms"] == pytest.approx(1000.0)
        assert interactive["p99_ms"] == pytest.approx(2000.0)
        batch = report["classes"]["batch"]
        assert batch["shed_capacity"] == 1
        assert batch["rejected"] == 1
        assert report["classes"]["best_effort"]["errors"] == 1
        assert report["admission"] == {"admitted": 5, "rejected": 1}

    def test_custom_priority_integers_get_generated_names(self):
        log = MetricsLog()
        log.record(span(rid=1, priority=7, status="ok", t_done=1.0))
        assert set(log.slo_report()["classes"]) == {"p7"}

    def test_batch_shape_aggregation(self):
        log = MetricsLog()
        assert log.slo_report()["max_batch_size"] == 0
        log.record_batch(1, 0, ("dft", 64), 4, t0=0.0, t1=1.0)
        log.record_batch(2, 0, ("dft", 64), 2, t0=1.0, t1=2.0, flops=10.0, nbytes=64)
        report = log.slo_report()
        assert report["batches"] == 2
        assert report["mean_batch_size"] == pytest.approx(3.0)
        assert report["max_batch_size"] == 4
        b = log.batches()[1]
        assert (b.flops, b.nbytes) == (10.0, 64)

    def test_throughput_uses_completed_over_wall(self):
        log = MetricsLog()
        log.record_many([
            span(rid=1, status="ok", t_submit=0.0, t_done=2.0),
            span(rid=2, status="ok", t_submit=1.0, t_done=4.0),
            span(rid=3, status="shed", t_submit=1.0, t_done=1.5),
        ])
        report = log.slo_report()
        assert report["wall_s"] == pytest.approx(4.0)
        assert report["throughput_rps"] == pytest.approx(0.5)
