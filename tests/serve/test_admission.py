"""Unit tests for the admission controller's three decisions.

The controller is driven with an explicit clock (every entry point
takes ``now``), so shed ordering, deadline expiry and aging are tested
deterministically — no sleeps, no wall-clock races.
"""

import numpy as np
import pytest

from repro.serve import (
    AdmissionController,
    AdmissionRejected,
    DeadlineExceeded,
    Ticket,
    TransformRequest,
)


def mk(rid, priority=1, deadline=None, n=64, t=0.0):
    """A synthetic dft request; vary ``n`` to vary the batch key."""
    return TransformRequest(
        rid=rid,
        payload=np.zeros(n, dtype=np.complex128),
        n=n,
        direction="forward",
        backend="dft",
        library="numpy",
        priority=priority,
        deadline=deadline,
        params={},
        ticket=Ticket(rid, priority),
        t_submit=t,
    )


def strict():
    """A controller with aging disabled: pure strict priority."""
    return AdmissionController(max_queue=16, age_promote_s=0.0)


class TestValidation:
    def test_max_queue_must_be_positive(self):
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionController(max_queue=0)

    def test_age_promote_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="age_promote_s"):
            AdmissionController(max_queue=4, age_promote_s=-1.0)


class TestSelection:
    def test_fifo_within_one_key(self):
        ctrl = strict()
        for rid in (1, 2, 3):
            ctrl.offer(mk(rid), now=0.0)
        batch = ctrl.select(now=0.0, max_batch=8)
        assert [r.rid for r in batch] == [1, 2, 3]
        assert len(ctrl) == 0

    def test_select_coalesces_only_the_head_key(self):
        ctrl = strict()
        ctrl.offer(mk(1, n=64), now=0.0)
        ctrl.offer(mk(2, n=128), now=0.0)
        ctrl.offer(mk(3, n=64), now=0.0)
        first = ctrl.select(now=0.0, max_batch=8)
        assert [r.rid for r in first] == [1, 3]  # head's key, oldest first
        second = ctrl.select(now=0.0, max_batch=8)
        assert [r.rid for r in second] == [2]

    def test_max_batch_caps_the_batch(self):
        ctrl = strict()
        for rid in range(1, 6):
            ctrl.offer(mk(rid), now=0.0)
        assert len(ctrl.select(now=0.0, max_batch=2)) == 2
        assert len(ctrl) == 3

    def test_best_priority_class_forms_the_batch(self):
        ctrl = strict()
        ctrl.offer(mk(1, priority=1, n=64), now=0.0)
        ctrl.offer(mk(2, priority=0, n=128), now=0.0)
        batch = ctrl.select(now=0.0, max_batch=8)
        assert [r.rid for r in batch] == [2]  # interactive key wins

    def test_selected_requests_get_t_select_stamped(self):
        ctrl = strict()
        ctrl.offer(mk(1), now=1.0)
        (req,) = ctrl.select(now=2.5, max_batch=1)
        assert req.t_select == 2.5
        assert req.t_admit == 1.0

    def test_empty_queue_selects_nothing(self):
        assert strict().select(now=0.0, max_batch=8) == []


class TestSheddingOrder:
    def test_lower_class_is_shed_first(self):
        ctrl = AdmissionController(max_queue=2, age_promote_s=0.0)
        victim = mk(1, priority=2)
        keeper = mk(2, priority=1)
        ctrl.offer(victim, now=0.0)
        ctrl.offer(keeper, now=0.0)
        ctrl.offer(mk(3, priority=0), now=0.0)  # sheds the best_effort one
        with pytest.raises(AdmissionRejected) as exc:
            victim.ticket.result(timeout=0.0)
        assert exc.value.shed is True
        assert exc.value.priority == 2
        assert keeper.ticket.done() is False
        counters = ctrl.counters()
        assert counters["shed_capacity"] == 1
        assert counters["admitted"] == 3
        assert counters["queued"] == 2

    def test_within_class_no_deadline_is_shed_before_deadlines(self):
        ctrl = AdmissionController(max_queue=2, age_promote_s=0.0)
        lax = mk(1, priority=1, deadline=None)
        tight = mk(2, priority=1, deadline=5.0)
        ctrl.offer(lax, now=0.0)
        ctrl.offer(tight, now=0.0)
        ctrl.offer(mk(3, priority=1, deadline=1.0), now=0.0)
        assert isinstance(lax.ticket.exception(), AdmissionRejected)
        assert tight.ticket.done() is False

    def test_within_class_latest_deadline_is_shed_first(self):
        ctrl = AdmissionController(max_queue=2, age_promote_s=0.0)
        late = mk(1, priority=1, deadline=10.0)
        soon = mk(2, priority=1, deadline=5.0)
        ctrl.offer(late, now=0.0)
        ctrl.offer(soon, now=0.0)
        ctrl.offer(mk(3, priority=1, deadline=1.0), now=0.0)
        assert isinstance(late.ticket.exception(), AdmissionRejected)
        assert soon.ticket.done() is False

    def test_full_of_more_urgent_work_rejects_synchronously(self):
        ctrl = AdmissionController(max_queue=1, age_promote_s=0.0)
        queued = mk(1, priority=0)
        ctrl.offer(queued, now=0.0)
        with pytest.raises(AdmissionRejected) as exc:
            ctrl.offer(mk(2, priority=1), now=0.0)
        assert exc.value.shed is False
        assert exc.value.priority == 1
        assert exc.value.queue_depth == 1
        assert exc.value.max_queue == 1
        assert exc.value.load == 1.0
        assert queued.ticket.done() is False  # untouched
        assert ctrl.counters()["rejected"] == 1

    def test_equal_urgency_rejects_the_newcomer(self):
        # FIFO fairness: an equally-urgent newcomer never churns out
        # an already-queued request.
        ctrl = AdmissionController(max_queue=1, age_promote_s=0.0)
        ctrl.offer(mk(1, priority=1), now=0.0)
        with pytest.raises(AdmissionRejected):
            ctrl.offer(mk(2, priority=1), now=0.0)

    def test_on_shed_callback_fires(self):
        seen = []
        ctrl = AdmissionController(
            max_queue=1, age_promote_s=0.0,
            on_shed=lambda req, err: seen.append((req.rid, type(err))),
        )
        ctrl.offer(mk(1, priority=2), now=0.0)
        ctrl.offer(mk(2, priority=0), now=0.0)
        assert seen == [(1, AdmissionRejected)]


class TestDeadlines:
    def test_expired_requests_are_failed_at_select(self):
        ctrl = strict()
        doomed = mk(1, deadline=5.0)
        alive = mk(2, deadline=50.0)
        ctrl.offer(doomed, now=1.0)
        ctrl.offer(alive, now=1.0)
        batch = ctrl.select(now=6.0, max_batch=8)
        assert [r.rid for r in batch] == [2]
        err = doomed.ticket.exception()
        assert isinstance(err, DeadlineExceeded)
        assert err.waited_s == pytest.approx(5.0)
        assert ctrl.counters()["shed_deadline"] == 1

    def test_expired_request_never_occupies_a_batch_slot(self):
        ctrl = strict()
        ctrl.offer(mk(1, deadline=2.0), now=0.0)
        assert ctrl.select(now=3.0, max_batch=8) == []
        assert len(ctrl) == 0

    def test_next_deadline_tracks_the_earliest_live_one(self):
        ctrl = strict()
        assert ctrl.next_deadline() is None
        ctrl.offer(mk(1, deadline=7.0), now=0.0)
        ctrl.offer(mk(2, deadline=3.0), now=0.0)
        ctrl.offer(mk(3), now=0.0)
        assert ctrl.next_deadline() == 3.0
        ctrl.select(now=4.0, max_batch=8)  # rid 2 expires, rest selected
        assert ctrl.next_deadline() is None


class TestAging:
    def test_aged_best_effort_beats_fresh_interactive(self):
        ctrl = AdmissionController(max_queue=16, age_promote_s=1.0)
        ctrl.offer(mk(1, priority=2, n=64), now=0.0)
        ctrl.offer(mk(2, priority=0, n=128), now=2.0)
        # At now=2.5 the best_effort request has aged two classes:
        # effective priority 0, and it is older — it goes first.
        batch = ctrl.select(now=2.5, max_batch=8)
        assert [r.rid for r in batch] == [1]

    def test_without_aging_interactive_always_wins(self):
        ctrl = strict()
        ctrl.offer(mk(1, priority=2, n=64), now=0.0)
        ctrl.offer(mk(2, priority=0, n=128), now=2.0)
        batch = ctrl.select(now=1000.0, max_batch=8)
        assert [r.rid for r in batch] == [2]


class TestDrainAndCounters:
    def test_drain_fails_everything_in_rid_order(self):
        ctrl = strict()
        for rid, prio in ((1, 2), (2, 0), (3, 1)):
            ctrl.offer(mk(rid, priority=prio), now=0.0)
        failed = []
        assert ctrl.drain(lambda req: failed.append(req.rid)) == 3
        assert failed == [1, 2, 3]
        assert len(ctrl) == 0
        assert ctrl.select(now=0.0, max_batch=8) == []

    def test_load_is_the_occupancy_fraction(self):
        ctrl = AdmissionController(max_queue=4, age_promote_s=0.0)
        assert ctrl.load() == 0.0
        ctrl.offer(mk(1), now=0.0)
        assert ctrl.load() == 0.25

    def test_counters_keys_are_stable(self):
        assert set(strict().counters()) == {
            "admitted", "rejected", "shed_capacity", "shed_deadline", "queued",
        }

    def test_interleaved_shed_and_select_keep_indexes_consistent(self):
        # Lazy deletion stress: shed/expire/select interleaved must
        # never surface a stale request or miscount the queue.
        ctrl = AdmissionController(max_queue=4, age_promote_s=0.0)
        reqs = [mk(rid, priority=rid % 3, deadline=10.0 + rid) for rid in range(1, 5)]
        for req in reqs:
            ctrl.offer(req, now=0.0)
        ctrl.offer(mk(9, priority=0), now=0.0)  # sheds the worst victim
        assert len(ctrl) == 4
        selected = []
        while True:
            batch = ctrl.select(now=1.0, max_batch=1)
            if not batch:
                break
            selected.extend(r.rid for r in batch)
        assert len(selected) == 4
        assert len(set(selected)) == 4
        shed = [r for r in reqs if isinstance(r.ticket.exception(), AdmissionRejected)]
        assert len(shed) == 1
        assert shed[0].rid not in selected
