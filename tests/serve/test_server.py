"""Tests for the transform server: lifecycle, validation, typed errors.

Timing-sensitive tests park requests behind a long batch-formation
window (``batch_linger_s``) so the worker is provably asleep while the
test mutates server state — margins are hundreds of milliseconds, not
scheduler luck.
"""

import numpy as np
import pytest

from repro.serve import (
    AdmissionRejected,
    DeadlineExceeded,
    ServeConfig,
    ServerClosed,
    TransformServer,
)


def _signal(n, seed=0):
    gen = np.random.default_rng(seed)
    return gen.standard_normal(n) + 1j * gen.standard_normal(n)


class TestLifecycle:
    def test_submit_before_start_raises(self):
        srv = TransformServer(ServeConfig())
        with pytest.raises(ServerClosed, match="new"):
            srv.submit(_signal(64))

    def test_start_twice_raises(self):
        with TransformServer(ServeConfig(workers=1)) as srv:
            with pytest.raises(ServerClosed, match="running"):
                srv.start()

    def test_submit_after_stop_raises(self):
        srv = TransformServer(ServeConfig(workers=1)).start()
        srv.stop()
        with pytest.raises(ServerClosed, match="stopped"):
            srv.submit(_signal(64))

    def test_stop_is_idempotent(self):
        srv = TransformServer(ServeConfig(workers=1)).start()
        srv.stop()
        srv.stop()

    def test_context_manager_drains_pending_work(self):
        xs = [_signal(128, seed=i) for i in range(5)]
        with TransformServer(
            ServeConfig(workers=1, default_library="numpy", batch_linger_s=0.02)
        ) as srv:
            tickets = [srv.submit(x) for x in xs]
        # __exit__ drains: every ticket resolved with its result.
        for x, ticket in zip(xs, tickets):
            np.testing.assert_array_equal(ticket.result(timeout=0.0), np.fft.fft(x))

    def test_stop_without_drain_fails_pending_with_server_closed(self):
        cfg = ServeConfig(workers=1, batch_linger_s=0.5, default_library="numpy")
        srv = TransformServer(cfg).start()
        tickets = [srv.submit(_signal(64, seed=i)) for i in range(4)]
        srv.stop(drain=False, timeout=5.0)  # well inside the 500 ms linger
        for ticket in tickets:
            with pytest.raises(ServerClosed):
                ticket.result(timeout=0.0)
        assert srv.inflight() == 0
        statuses = [s.status for s in srv.metrics.spans()]
        assert statuses.count("closed") == 4


class TestResults:
    def test_dft_numpy_matches_numpy_fft(self):
        x = _signal(256)
        with TransformServer(ServeConfig(workers=1)) as srv:
            out = srv.submit(x, library="numpy").result(timeout=10.0)
        np.testing.assert_array_equal(out, np.fft.fft(x))

    def test_dft_repro_inverse_matches_plan(self):
        from repro.dft import plan_for

        x = _signal(256)
        with TransformServer(ServeConfig(workers=1)) as srv:
            out = srv.submit(
                x, direction="inverse", library="repro"
            ).result(timeout=10.0)
        np.testing.assert_array_equal(
            out, plan_for(256, x.dtype).execute(x, inverse=True)
        )

    def test_transpose_backend_serves_the_distributed_fft(self):
        x = _signal(256)
        with TransformServer(ServeConfig(workers=1)) as srv:
            out = srv.submit(
                x, backend="transpose", library="numpy", nranks=4
            ).result(timeout=30.0)
        np.testing.assert_allclose(out, np.fft.fft(x), rtol=1e-9, atol=1e-9)

    def test_executor_error_propagates_to_every_ticket(self, monkeypatch):
        import repro.serve.server as server_mod

        def boom(batch):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(server_mod, "execute_batch", boom)
        with TransformServer(
            ServeConfig(workers=1, default_library="numpy")
        ) as srv:
            ticket = srv.submit(_signal(64))
            with pytest.raises(RuntimeError, match="kernel exploded"):
                ticket.result(timeout=10.0)
        assert [s.status for s in srv.metrics.spans()] == ["error"]


class TestSubmitValidation:
    """Argument validation happens before the running-state check, so an
    unstarted server is enough to pin every rejection."""

    @pytest.fixture()
    def srv(self):
        return TransformServer(ServeConfig())

    def test_bad_direction(self, srv):
        with pytest.raises(ValueError, match="direction"):
            srv.submit(_signal(64), direction="sideways")

    def test_bad_backend(self, srv):
        with pytest.raises(ValueError, match="backend"):
            srv.submit(_signal(64), backend="quantum")

    def test_bad_library(self, srv):
        with pytest.raises(ValueError, match="library"):
            srv.submit(_signal(64), library="mkl")

    def test_payload_must_be_1d_and_nonempty(self, srv):
        with pytest.raises(ValueError, match="1-D"):
            srv.submit(np.zeros((4, 4), dtype=np.complex128))
        with pytest.raises(ValueError, match="1-D"):
            srv.submit(np.zeros(0, dtype=np.complex128))

    def test_unknown_priority_class(self, srv):
        with pytest.raises(ValueError, match="priority class"):
            srv.submit(_signal(64), priority="platinum")

    def test_negative_priority(self, srv):
        with pytest.raises(ValueError, match="priority"):
            srv.submit(_signal(64), priority=-1)

    def test_nonpositive_deadline(self, srv):
        with pytest.raises(ValueError, match="deadline_s"):
            srv.submit(_signal(64), deadline_s=0.0)

    def test_unexpected_backend_params(self, srv):
        with pytest.raises(TypeError, match="unexpected dft parameters"):
            srv.submit(_signal(64), nranks=4)

    def test_transpose_rejects_inverse(self, srv):
        with pytest.raises(ValueError, match="forward"):
            srv.submit(
                _signal(64), backend="transpose", direction="inverse", nranks=4
            )

    def test_nufft_rejects_bad_kind(self, srv):
        with pytest.raises(ValueError, match="kind"):
            srv.submit(
                _signal(64), backend="nufft",
                points=np.linspace(0, 0.9, 64), k_modes=128, kind=3,
            )


class TestOverloadPaths:
    def test_sync_rejection_then_shed_then_service(self):
        cfg = ServeConfig(
            workers=1, max_queue=1, max_batch=8,
            batch_linger_s=0.5, default_library="numpy",
            age_promote_s=0.0,
        )
        x = _signal(128)
        with TransformServer(cfg) as srv:
            first = srv.submit(x, priority="batch")
            # Equal urgency + full queue: rejected at the door.
            with pytest.raises(AdmissionRejected) as exc:
                srv.submit(x, priority="batch")
            assert exc.value.shed is False
            # More urgent work sheds the queued request.
            winner = srv.submit(x, priority="interactive")
            with pytest.raises(AdmissionRejected) as shed_exc:
                first.result(timeout=5.0)
            assert shed_exc.value.shed is True
            np.testing.assert_array_equal(
                winner.result(timeout=10.0), np.fft.fft(x)
            )
            counters = srv.admission_counters()
        assert counters["rejected"] == 1
        assert counters["shed_capacity"] == 1
        assert counters["admitted"] == 2
        statuses = sorted(s.status for s in srv.metrics.spans())
        assert statuses == ["ok", "rejected", "shed"]

    def test_deadline_exceeded_is_delivered_through_the_ticket(self):
        cfg = ServeConfig(
            workers=1, max_batch=64, batch_linger_s=0.05,
            default_library="numpy",
        )
        with TransformServer(cfg) as srv:
            ticket = srv.submit(_signal(128), deadline_s=0.005)
            with pytest.raises(DeadlineExceeded) as exc:
                ticket.result(timeout=10.0)
            assert exc.value.deadline_s == pytest.approx(0.005)
            assert exc.value.waited_s > 0.0
        assert [s.status for s in srv.metrics.spans()] == ["deadline"]


class TestObservability:
    def test_warmup_backpressure_and_report(self):
        cfg = ServeConfig(workers=1, warm_shapes=(64,), default_library="repro")
        with TransformServer(cfg) as srv:
            assert srv.warmup_info()["shapes"]["requested"] == 1
            assert 0.0 <= srv.backpressure() <= 1.0
            srv.submit(_signal(64)).result(timeout=10.0)
            report = srv.metrics_report()
        assert report["completed"] == 1
        assert set(report["classes"]) == {"batch"}
        assert "plan_cache" in report and "soi_plan_cache" in report
        assert report["admission"]["admitted"] == 1
        assert srv.inflight() == 0
