"""Tests for the serve-layer float32 wire and wisdom warm-up.

Batch keys carry the payload dtype, so a coalesced batch is always
precision-homogeneous and complex64 requests ride the single-precision
kernels end to end — half the payload bytes on the wire and in the
batcher.  ``ServeConfig.wisdom_path`` loads autotuner wisdom at start
and pre-builds the tuned plans, so the first request already dispatches
the raced configuration.
"""

import numpy as np
import pytest

from repro.dft import tune
from repro.serve import ServeConfig, TransformServer
from repro.serve.batcher import batch_bytes
from repro.serve.request import TransformRequest, Ticket


def _signal(n, seed=0, dtype=np.complex128):
    gen = np.random.default_rng(seed)
    return (gen.standard_normal(n) + 1j * gen.standard_normal(n)).astype(dtype)


def _req(payload, rid=0):
    return TransformRequest(
        rid=rid, payload=payload, n=payload.shape[-1], direction="forward",
        backend="dft", library="repro", priority=1, deadline=None, params={},
        ticket=Ticket(rid, 1),
    )


class TestBatchKey:
    def test_dtype_separates_batches(self):
        a = _req(_signal(256, dtype=np.complex128))
        b = _req(_signal(256, dtype=np.complex64))
        c = _req(_signal(256, seed=1, dtype=np.complex64))
        assert a.batch_key != b.batch_key
        assert b.batch_key == c.batch_key

    def test_batch_bytes_is_itemsize_aware(self):
        r128 = _req(_signal(256, dtype=np.complex128))
        r64 = _req(_signal(256, dtype=np.complex64))
        assert batch_bytes([r128]) == 2 * batch_bytes([r64])


class TestSinglePrecisionRequests:
    @pytest.mark.parametrize("library", ["repro", "numpy"])
    def test_complex64_in_complex64_out(self, library):
        x = _signal(512, seed=7, dtype=np.complex64)
        with TransformServer(ServeConfig(workers=1)) as srv:
            out = srv.submit(x, library=library).result(timeout=10.0)
        assert out.dtype == np.complex64
        ref = np.fft.fft(x.astype(np.complex128))
        rel = np.linalg.norm(out - ref) / np.linalg.norm(ref)
        assert rel < 64 * np.finfo(np.float32).eps * np.log2(512)

    def test_complex128_contract_unchanged(self):
        x = _signal(512, seed=8)
        with TransformServer(ServeConfig(workers=1)) as srv:
            out = srv.submit(x, library="repro").result(timeout=10.0)
        assert out.dtype == np.complex128


class TestWisdomWarmup:
    @pytest.fixture(autouse=True)
    def fresh_wisdom(self):
        tune.clear_wisdom()
        yield
        tune.clear_wisdom()

    def test_loads_and_warms_plans(self, tmp_path):
        tune.record_wisdom(
            256, np.complex128, 1,
            {"variant": "radix4", "group_elements": None, "tile_elements": None},
        )
        path = tmp_path / "wisdom.json"
        tune.save_wisdom(str(path))
        tune.clear_wisdom()
        with TransformServer(ServeConfig(workers=1, wisdom_path=str(path))) as srv:
            info = srv.warmup_info()
            assert info["wisdom"]["status"] == "ok"
            assert info["wisdom"]["loaded"] == 1
            assert info["wisdom"]["plans_warmed"] == 1
            # The loaded entry is live wisdom for request execution.
            assert tune.tuned_config_for(256, np.complex128, 1) is not None
            x = _signal(256, seed=9)
            out = srv.submit(x, library="repro").result(timeout=10.0)
        assert np.allclose(out, np.fft.fft(x))

    def test_corrupt_wisdom_file_does_not_block_start(self, tmp_path):
        path = tmp_path / "wisdom.json"
        path.write_text("{broken", encoding="utf-8")
        with TransformServer(ServeConfig(workers=1, wisdom_path=str(path))) as srv:
            assert srv.warmup_info()["wisdom"]["status"] == "corrupt"
            out = srv.submit(_signal(128, seed=10)).result(timeout=10.0)
        assert out.shape == (128,)

    def test_no_wisdom_path_reports_nothing(self):
        with TransformServer(ServeConfig(workers=1)) as srv:
            assert "wisdom" not in srv.warmup_info()
