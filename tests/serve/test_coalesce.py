"""Coalescing property tests: batching may never change a result bit.

``execute_batch`` on K same-key requests must be bitwise-identical to
executing each request alone, for every backend and direction — the
contract that lets the batcher group purely for throughput.  The live
server tests then pin that the linger window actually forms multi-
request batches and that ``coalesce=False`` really is the
one-at-a-time baseline.
"""

import numpy as np
import pytest

from repro.serve import ServeConfig, TransformServer
from repro.serve.batcher import execute_batch


def _signals(k, n, seed=7):
    gen = np.random.default_rng(seed)
    return [
        np.ascontiguousarray(gen.standard_normal(n) + 1j * gen.standard_normal(n))
        for _ in range(k)
    ]


def _request(x, direction="forward", backend="dft", library="numpy",
             priority="batch", **params):
    """Build a fully-validated request without starting a server."""
    srv = TransformServer(ServeConfig())
    return srv._build_request(x, direction, backend, library, priority, None, params)


def _assert_batch_equals_solo(requests):
    batched = execute_batch(requests)
    assert len(batched) == len(requests)
    for req, out in zip(requests, batched):
        (solo,) = execute_batch([req])
        np.testing.assert_array_equal(out, solo)
    return batched


class TestExecuteBatchBitwise:
    @pytest.mark.parametrize("direction", ["forward", "inverse"])
    @pytest.mark.parametrize("library", ["numpy", "repro"])
    def test_dft(self, direction, library):
        reqs = [
            _request(x, direction=direction, library=library)
            for x in _signals(5, 256)
        ]
        outs = _assert_batch_equals_solo(reqs)
        # Cross-check against the library called directly.
        for x, out in zip(_signals(5, 256), outs):
            if library == "numpy":
                ref = np.fft.ifft(x) if direction == "inverse" else np.fft.fft(x)
            else:
                from repro.dft import plan_for

                ref = plan_for(256, x.dtype).execute(x, inverse=direction == "inverse")
            np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("direction", ["forward", "inverse"])
    def test_soi(self, direction):
        reqs = [
            _request(x, direction=direction, backend="soi", library="numpy", p=8)
            for x in _signals(3, 1024)
        ]
        _assert_batch_equals_solo(reqs)

    def test_transpose_shares_one_spmd_world(self):
        reqs = [
            _request(x, backend="transpose", library="numpy", nranks=4)
            for x in _signals(3, 256)
        ]
        outs = _assert_batch_equals_solo(reqs)
        for x, out in zip(_signals(3, 256), outs):
            np.testing.assert_allclose(out, np.fft.fft(x), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("kind", [1, 2])
    def test_nufft(self, kind):
        gen = np.random.default_rng(11)
        k_modes = 128
        points = gen.uniform(0.0, 1.0, size=96)
        reqs = []
        for seed in range(3):
            payload = _signals(1, 96 if kind == 1 else k_modes, seed=seed)[0]
            reqs.append(
                _request(
                    payload, backend="nufft", library="numpy",
                    points=points, k_modes=k_modes, kind=kind,
                )
            )
        _assert_batch_equals_solo(reqs)

    def test_priorities_and_deadlines_do_not_affect_outputs(self):
        xs = _signals(4, 256)
        plain = [_request(x, priority="batch") for x in xs]
        mixed = [
            _request(x, priority=prio)
            for x, prio in zip(xs, ("interactive", "batch", "best_effort", 0))
        ]
        for a, b in zip(execute_batch(plain), execute_batch(mixed)):
            np.testing.assert_array_equal(a, b)
        assert len({r.batch_key for r in plain + mixed}) == 1

    def test_empty_batch_is_a_no_op(self):
        assert execute_batch([]) == []


class TestLiveServerCoalescing:
    def _serve(self, coalesce):
        cfg = ServeConfig(
            workers=1, max_batch=16, coalesce=coalesce,
            batch_linger_s=0.05 if coalesce else 0.0,
            default_library="numpy",
        )
        xs = _signals(6, 256)
        with TransformServer(cfg) as srv:
            tickets = [srv.submit(x, priority="interactive") for x in xs]
            outs = [t.result(timeout=30.0) for t in tickets]
        # Read batch shapes only after stop() joined the workers.
        sizes = [s.batch_size for s in srv.metrics.spans()]
        return xs, outs, sizes

    def test_lingering_server_forms_multi_request_batches(self):
        xs, outs, sizes = self._serve(coalesce=True)
        assert max(sizes) >= 2  # the linger window actually coalesced
        for x, out in zip(xs, outs):
            np.testing.assert_array_equal(out, np.fft.fft(x))

    def test_coalesce_off_is_strictly_one_at_a_time(self):
        xs, outs, sizes = self._serve(coalesce=False)
        assert sizes and max(sizes) == 1
        for x, out in zip(xs, outs):
            np.testing.assert_array_equal(out, np.fft.fft(x))
