"""Integration tests of the top-level public API (the README quickstart)."""

import numpy as np

import repro
from repro import (
    GaussianWindow,
    SoiPlan,
    TauSigmaWindow,
    design_window,
    run_spmd,
    snr_db,
    soi_fft,
    soi_fft_distributed,
    soi_segment,
    transpose_fft_distributed,
)


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_from_docstring(self):
        """The exact flow promised in the package docstring."""
        n, p = 4096, 8
        plan = SoiPlan(n=n, p=p)
        x = np.random.default_rng(0).standard_normal(n) + 0j
        y = soi_fft(x, plan)
        assert snr_db(y, np.fft.fft(x)) / 20.0 > 13.0

    def test_window_classes_exported(self):
        assert TauSigmaWindow(0.8, 100.0).kappa() > 1.0
        assert GaussianWindow(40.0).kappa() > 1.0

    def test_design_window_exported(self):
        assert design_window(8.0).b > 0

    def test_segment_api(self):
        plan = SoiPlan(n=2048, p=4, window="digits8")
        x = np.random.default_rng(1).standard_normal(2048) + 0j
        seg = soi_segment(x, plan, 2)
        assert seg.shape == (512,)

    def test_distributed_end_to_end(self):
        """Full user journey: plan -> scatter -> SPMD -> in-order result."""
        n, nranks = 4096, 4
        plan = SoiPlan(n=n, p=8)
        rng = np.random.default_rng(2)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)

        def prog(comm):
            block = n // comm.size
            local = x[comm.rank * block : (comm.rank + 1) * block]
            return soi_fft_distributed(comm, local, plan)

        res = run_spmd(nranks, prog)
        y = np.concatenate(res.values)
        assert snr_db(y, np.fft.fft(x)) > 280.0
        assert res.stats.alltoall_rounds == 1

    def test_baseline_exported(self):
        n, nranks = 1024, 2
        x = np.random.default_rng(3).standard_normal(n) + 0j

        def prog(comm):
            block = n // comm.size
            return transpose_fft_distributed(
                comm, x[comm.rank * block : (comm.rank + 1) * block], n
            )

        res = run_spmd(nranks, prog)
        assert snr_db(np.concatenate(res.values), np.fft.fft(x)) > 290.0
