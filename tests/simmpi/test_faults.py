"""Tests for the deterministic fault-injection engine (`repro.simmpi.faults`)."""

import numpy as np
import pytest

from repro.simmpi import FAULT_KINDS, ChaosSchedule, FaultPlan, FaultSpec
from repro.simmpi.faults import corrupt_payload


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gremlin")

    def test_kill_requires_rank(self):
        with pytest.raises(ValueError, match="rank="):
            FaultSpec(kind="kill")

    def test_wildcards_match_everything(self):
        spec = FaultSpec(kind="drop")
        assert spec.matches("alltoall", 0, 1, 7)
        assert spec.matches("halo", 3, 2, 0)

    def test_keyed_spec_matches_only_its_delivery(self):
        spec = FaultSpec(kind="bitflip", phase="halo", src=1, dst=0, index=2)
        assert spec.matches("halo", 1, 0, 2)
        assert not spec.matches("halo", 1, 0, 3)
        assert not spec.matches("alltoall", 1, 0, 2)
        assert not spec.matches("halo", 0, 1, 2)

    def test_kill_never_matches_wire_deliveries(self):
        assert not FaultSpec(kind="kill", rank=0).matches("halo", 0, 1, 0)


class TestFaultPlan:
    def test_fluent_builders(self):
        plan = (
            FaultPlan()
            .drop(src=0, dst=1)
            .duplicate(phase="halo")
            .delay(delay_s=0.1)
            .truncate(keep_fraction=0.25)
            .bitflip(bit=3)
            .kill(2, phase="alltoall")
        )
        assert [s.kind for s in plan.specs] == list(FAULT_KINDS)

    def test_one_shot_by_default(self):
        plan = FaultPlan().drop(src=0, dst=1)
        assert [s.kind for s in plan.actions_for("p", 0, 1, 0)] == ["drop"]
        assert plan.actions_for("p", 0, 1, 1) == []

    def test_unlimited_firing(self):
        plan = FaultPlan().drop(times=None)
        for i in range(5):
            assert len(plan.actions_for("p", 0, 1, i)) == 1

    def test_bounded_firing_count(self):
        plan = FaultPlan().bitflip(times=3)
        fired = sum(len(plan.actions_for("p", 0, 1, i)) for i in range(10))
        assert fired == 3

    def test_non_matching_delivery_untouched(self):
        plan = FaultPlan().drop(phase="halo", src=1, dst=0)
        assert plan.actions_for("alltoall", 1, 0, 0) == []
        assert plan.actions_for("halo", 0, 1, 0) == []

    def test_next_index_counts_per_flow(self):
        plan = FaultPlan()
        assert plan.next_index("p", 0, 1) == 0
        assert plan.next_index("p", 0, 1) == 1
        assert plan.next_index("p", 1, 0) == 0  # independent flow
        assert plan.next_index("q", 0, 1) == 0  # independent phase

    def test_new_run_resets_counters_but_keeps_budgets(self):
        plan = FaultPlan().drop(src=0, dst=1)
        plan.next_index("p", 0, 1)
        plan.actions_for("p", 0, 1, 0)  # consume the one-shot drop
        plan.new_run()
        assert plan.next_index("p", 0, 1) == 0  # counter restarted
        assert plan.actions_for("p", 0, 1, 0) == []  # budget stays consumed

    def test_reset_restores_budgets_and_log(self):
        plan = FaultPlan().drop(src=0, dst=1)
        plan.actions_for("p", 0, 1, 0)
        assert plan.log
        plan.reset()
        assert plan.log == []
        assert len(plan.actions_for("p", 0, 1, 0)) == 1

    def test_should_kill_matches_rank_and_phase(self):
        plan = FaultPlan().kill(1, phase="alltoall")
        assert not plan.should_kill(0, "alltoall")
        assert not plan.should_kill(1, "halo")
        assert plan.should_kill(1, "alltoall")
        assert not plan.should_kill(1, "alltoall")  # budget consumed

    def test_log_records_firings(self):
        plan = FaultPlan().drop(src=0, dst=1).kill(2)
        plan.actions_for("p", 0, 1, 4)
        plan.should_kill(2, "halo")
        assert ("drop", "p", 0, 1, 4) in plan.log
        assert ("kill", "halo", 2, 2, 0) in plan.log


class TestChaosSchedule:
    KEYS = [
        (phase, src, dst, idx)
        for phase in ("halo", "alltoall")
        for src in range(4)
        for dst in range(4)
        for idx in range(4)
    ]

    @staticmethod
    def _decisions(sched, keys):
        return [tuple(s.kind for s in sched.actions_for(*k)) for k in keys]

    def test_probabilities_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError, match="probabilities"):
            ChaosSchedule(seed=0, p_drop=0.7, p_bitflip=0.6)

    def test_same_seed_same_decisions_any_order(self):
        a = self._decisions(ChaosSchedule(seed=3, p_drop=0.2, p_bitflip=0.2), self.KEYS)
        b_sched = ChaosSchedule(seed=3, p_drop=0.2, p_bitflip=0.2)
        b_rev = self._decisions(b_sched, list(reversed(self.KEYS)))
        assert a == list(reversed(b_rev))
        assert any(a)  # some faults fired
        assert not all(a)  # and some deliveries were clean

    def test_different_seed_different_decisions(self):
        a = self._decisions(ChaosSchedule(seed=3, p_drop=0.2, p_bitflip=0.2), self.KEYS)
        b = self._decisions(ChaosSchedule(seed=4, p_drop=0.2, p_bitflip=0.2), self.KEYS)
        assert a != b

    def test_attempt_gets_independent_draw(self):
        sched = ChaosSchedule(seed=1, p_drop=0.5)
        first = [bool(sched.actions_for("p", s, d, 0, attempt=0)) for s in range(6) for d in range(6)]
        retry = [bool(sched.actions_for("p", s, d, 0, attempt=1)) for s in range(6) for d in range(6)]
        assert first != retry  # a retransmission is not doomed to repeat its fate

    def test_at_most_one_kind_per_delivery(self):
        sched = ChaosSchedule(
            seed=2, p_drop=0.2, p_duplicate=0.2, p_delay=0.2, p_truncate=0.2, p_bitflip=0.2
        )
        for key in self.KEYS:
            assert len(sched.actions_for(*key)) <= 1

    def test_phase_restriction(self):
        sched = ChaosSchedule(seed=3, p_drop=0.5, phases=("alltoall",))
        halo = [sched.actions_for("halo", s, d, i) for (_, s, d, i) in self.KEYS]
        assert all(a == [] for a in halo)
        assert any(sched.actions_for("alltoall", s, d, i) for (_, s, d, i) in self.KEYS)

    def test_explicit_specs_ride_along(self):
        sched = ChaosSchedule(seed=0, specs=[FaultSpec(kind="drop", src=0, dst=1)])
        assert [s.kind for s in sched.actions_for("p", 0, 1, 0)] == ["drop"]

    def test_hashed_kill_fires_once_across_restarts(self):
        sched = ChaosSchedule(seed=0, p_kill=0.5)
        keys = [(r, ph) for r in range(6) for ph in ("halo", "alltoall")]
        fired = [k for k in keys if sched.should_kill(*k)]
        assert fired  # p=0.5 over 12 keys: some rank dies
        sched.new_run()
        # The replacement rank visits the same phase boundary and survives.
        assert all(not sched.should_kill(*k) for k in fired)

    def test_kill_decisions_reproducible(self):
        keys = [(r, ph) for r in range(6) for ph in ("halo", "alltoall")]
        a = [ChaosSchedule(seed=9, p_kill=0.3).should_kill(*k) for k in keys]
        b = [ChaosSchedule(seed=9, p_kill=0.3).should_kill(*k) for k in keys]
        assert a == b


class TestCorruptPayload:
    def test_bitflip_flips_exactly_one_bit(self):
        a = np.arange(6, dtype=np.float64)
        b = corrupt_payload(FaultSpec(kind="bitflip", bit=17), a)
        assert b.shape == a.shape and b.dtype == a.dtype
        xor = np.frombuffer(a.tobytes(), np.uint8) ^ np.frombuffer(b.tobytes(), np.uint8)
        assert int(np.unpackbits(xor).sum()) == 1

    def test_bitflip_bytes(self):
        b = corrupt_payload(FaultSpec(kind="bitflip", bit=0), b"\x00\x00")
        assert b == b"\x01\x00"

    def test_bitflip_wraps_bit_position(self):
        a = np.zeros(1, dtype=np.uint8)
        b = corrupt_payload(FaultSpec(kind="bitflip", bit=8 + 3), a)
        assert b[0] == 1 << 3

    def test_truncate_shortens_array(self):
        a = np.arange(8, dtype=np.complex128)
        b = corrupt_payload(FaultSpec(kind="truncate", keep_fraction=0.5), a)
        np.testing.assert_array_equal(b, a[:4])

    def test_truncate_always_loses_something(self):
        a = np.arange(3)
        b = corrupt_payload(FaultSpec(kind="truncate", keep_fraction=1.0), a)
        assert b.size < a.size

    def test_non_buffer_payloads_pass_through(self):
        for obj in (41, 2.5, "ctl", {"k": 1}, None):
            assert corrupt_payload(FaultSpec(kind="bitflip"), obj) == obj or obj is None

    def test_list_payload_corrupts_head_only(self):
        arrs = [np.ones(4), np.ones(4)]
        out = corrupt_payload(FaultSpec(kind="bitflip", bit=0), arrs)
        assert not np.array_equal(out[0], arrs[0])
        np.testing.assert_array_equal(out[1], arrs[1])
