"""Tests for communicator splitting: ``split``, ``split_by_node``,
nested splits, tag-space isolation, and failure/fuzzing behaviour."""

import numpy as np
import pytest

from repro.simmpi import (
    FaultPlan,
    RankFailedError,
    SubCommunicator,
    run_spmd,
)

GUARD_S = 30.0


class TestSplitSemantics:
    def test_split_partitions_by_color(self):
        def body(comm):
            sub = comm.split(comm.rank % 2)
            return (sub.rank, sub.size, sub.allgather(comm.rank))

        res = run_spmd(4, body)
        assert res.values[0] == (0, 2, [0, 2])
        assert res.values[2] == (1, 2, [0, 2])
        assert res.values[1] == (0, 2, [1, 3])
        assert res.values[3] == (1, 2, [1, 3])

    def test_key_orders_members(self):
        def body(comm):
            # Reverse key: highest old rank becomes local rank 0.
            sub = comm.split(0, key=-comm.rank)
            return (sub.rank, sub.allgather(comm.rank))

        res = run_spmd(4, body)
        assert res.values[3] == (0, [3, 2, 1, 0])
        assert res.values[0] == (3, [3, 2, 1, 0])

    def test_color_none_opts_out(self):
        def body(comm):
            sub = comm.split(None if comm.rank == 0 else "rest")
            if comm.rank == 0:
                return sub
            return sub.allgather(comm.rank)

        res = run_spmd(3, body)
        assert res.values[0] is None
        assert res.values[1] == [1, 2]

    def test_nested_split(self):
        def body(comm):
            half = comm.split(comm.rank // 2)  # {0,1} and {2,3}
            solo = half.split(half.rank)       # singletons
            return (half.size, solo.size, solo.allgather(comm.rank))

        res = run_spmd(4, body)
        for rank in range(4):
            assert res.values[rank] == (2, 1, [rank])

    def test_split_is_a_subcommunicator_with_world_rank(self):
        def body(comm):
            sub = comm.split(comm.rank % 2)
            assert isinstance(sub, SubCommunicator)
            return sub.world_rank

        res = run_spmd(4, body)
        assert res.values == [0, 1, 2, 3]

    def test_nonmember_construction_rejected(self):
        def body(comm):
            with pytest.raises(ValueError):
                SubCommunicator(comm.world, [0], 1)
            with pytest.raises(ValueError):
                SubCommunicator(comm.world, [0, 0, 1], 0)

        run_spmd(2, body)


class TestSplitByNode:
    def test_node_and_leader_communicators(self):
        def body(comm):
            node_comm, leader_comm = comm.split_by_node()
            members = node_comm.allgather(comm.rank)
            leaders = (
                leader_comm.allgather(comm.rank) if leader_comm else None
            )
            return members, leaders

        res = run_spmd(8, body, ranks_per_node=4)
        for rank in range(8):
            members, leaders = res.values[rank]
            assert members == ([0, 1, 2, 3] if rank < 4 else [4, 5, 6, 7])
            if rank in (0, 4):
                assert leaders == [0, 4]
            else:
                assert leaders is None

    def test_flat_world_every_rank_leads_itself(self):
        def body(comm):
            node_comm, leader_comm = comm.split_by_node()
            return node_comm.size, leader_comm.allgather(comm.rank)

        res = run_spmd(3, body)
        for rank in range(3):
            assert res.values[rank] == (1, [0, 1, 2])

    def test_ragged_tail_node(self):
        def body(comm):
            node_comm, _ = comm.split_by_node()
            return node_comm.allgather(comm.rank)

        res = run_spmd(5, body, ranks_per_node=2)
        assert res.values[4] == [4]
        assert res.values[0] == [0, 1]

    def test_node_groups(self):
        def body(comm):
            return comm.node_groups()

        res = run_spmd(5, body, ranks_per_node=2)
        assert res.values[0] == [[0, 1], [2, 3], [4]]


class TestTagSpaceIsolation:
    def test_sibling_splits_do_not_cross_talk(self):
        # Both halves run identically-tagged traffic concurrently; the
        # per-split context must keep the channels apart.
        def body(comm):
            sub = comm.split(comm.rank % 2)
            peer = 1 - sub.rank
            sub.send(("split", comm.rank), dest=peer, tag=7)
            return sub.recv(source=peer, tag=7)

        res = run_spmd(4, body)
        assert res.values[0] == ("split", 2)
        assert res.values[2] == ("split", 0)
        assert res.values[1] == ("split", 3)
        assert res.values[3] == ("split", 1)

    def test_parent_and_child_tags_are_disjoint(self):
        # Same (src, dst, tag) triple on the parent and the child:
        # each message must land on the communicator it was sent on.
        def body(comm):
            sub = comm.split(0)  # same membership as the parent
            if comm.rank == 0:
                comm.send("parent", dest=1, tag=3)
                sub.send("child", dest=1, tag=3)
                return None
            if comm.rank == 1:
                # Drain in the opposite order to the sends.
                child = sub.recv(source=0, tag=3)
                parent = comm.recv(source=0, tag=3)
                return parent, child
            return None

        res = run_spmd(2, body)
        assert res.values[1] == ("parent", "child")

    def test_successive_splits_get_fresh_contexts(self):
        def body(comm):
            first = comm.split(0)
            second = comm.split(0)
            if comm.rank == 0:
                first.send("one", dest=1)
                second.send("two", dest=1)
                return None
            b = second.recv(source=0)
            a = first.recv(source=0)
            return a, b

        res = run_spmd(2, body)
        assert res.values[1] == ("one", "two")

    def test_subcommunicator_collectives_and_barrier(self):
        def body(comm):
            sub = comm.split(comm.rank // 2)
            total = sub.allreduce(comm.rank)
            sub.barrier()
            objs = [np.full(2, comm.rank, dtype=float) for _ in range(sub.size)]
            pieces = sub.alltoall(objs, algorithm="bruck")
            return total, np.stack(pieces)

        res = run_spmd(4, body)
        assert res.values[0][0] == 1
        assert res.values[2][0] == 5
        np.testing.assert_array_equal(
            res.values[3][1], np.array([[2.0, 2.0], [3.0, 3.0]])
        )

    def test_traffic_charged_at_world_ranks(self):
        def body(comm):
            sub = comm.split(comm.rank % 2)
            peer = 1 - sub.rank
            sub.send(np.zeros(4), dest=peer)
            sub.recv(source=peer)

        res = run_spmd(4, body)
        pairs = res.stats.phase("default").bytes_by_pair
        # Split coordination (allgather) plus the payload exchanges all
        # sit on world-rank pairs; local sub-ranks never appear as keys.
        assert (0, 2) in pairs and (2, 0) in pairs
        assert (1, 3) in pairs and (3, 1) in pairs

    def test_shrink_on_subcommunicator_raises(self):
        def body(comm):
            sub = comm.split(0)
            with pytest.raises(NotImplementedError):
                sub.shrink()

        run_spmd(2, body)


class TestSplitUnderAdversity:
    def test_split_deterministic_under_schedule_fuzzing(self):
        from repro.check import ScheduleController

        def body(comm):
            sub = comm.split(comm.rank % 2, key=-comm.rank)
            gathered = sub.allgather(("v", comm.rank))
            objs = [np.full(4, comm.rank, dtype=float) for _ in range(sub.size)]
            return gathered, np.stack(sub.alltoall(objs, algorithm="hierarchical"))

        baseline = run_spmd(4, body, ranks_per_node=2)
        for seed in range(5):
            fuzzed = run_spmd(
                4, body, ranks_per_node=2,
                schedule=ScheduleController(seed=seed),
                timeout=GUARD_S,
            )
            for rank in range(4):
                assert fuzzed.values[rank][0] == baseline.values[rank][0]
                assert np.array_equal(
                    fuzzed.values[rank][1], baseline.values[rank][1]
                )

    def test_kill_inside_subcommunicator_collective_is_structured(self):
        def body(comm):
            sub = comm.split(comm.rank % 2)
            with comm.phase("doom"):
                pass
            try:
                sub.allgather(comm.rank)
            except RankFailedError as exc:
                return ("failed", exc.ranks)
            return ("ok", None)

        res = run_spmd(
            4, body,
            resilient=True,
            faults=FaultPlan().kill(2, phase="doom"),
            timeout=GUARD_S,
        )
        assert dict(res.failures).keys() == {2}
        # Rank 0 shares sub-communicator {0, 2} with the casualty.
        assert res.values[0] == ("failed", (2,))
        # The sibling {1, 3} is untouched.
        assert res.values[1] == ("ok", None)
        assert res.values[3] == ("ok", None)
