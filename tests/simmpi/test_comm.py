"""Tests for the simulated communicator's point-to-point and collectives."""

import numpy as np
import pytest

from repro.simmpi import Communicator, DeadlockError, World, run_spmd


class TestWorldBasics:
    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            World(0)

    def test_rank_range_validation(self):
        world = World(2)
        with pytest.raises(ValueError):
            Communicator(world, 5)

    def test_comm_properties(self):
        world = World(3)
        comm = world.comm(1)
        assert comm.rank == 1
        assert comm.size == 3


class TestPointToPoint:
    def test_send_recv_pair(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"v": 42}, dest=1)
                return None
            return comm.recv(source=0)

        res = run_spmd(2, prog)
        assert res[1] == {"v": 42}

    def test_numpy_payloads(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(5), dest=1)
                return None
            return comm.recv(source=0)

        res = run_spmd(2, prog)
        np.testing.assert_array_equal(res[1], np.arange(5))

    def test_tags_keep_channels_separate(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            # receive in reverse tag order: must not cross.
            b = comm.recv(source=0, tag=2)
            a = comm.recv(source=0, tag=1)
            return (a, b)

        assert run_spmd(2, prog)[1] == ("a", "b")

    def test_message_ordering_fifo_per_channel(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(10)]

        assert run_spmd(2, prog)[1] == list(range(10))

    def test_sendrecv_ring(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        res = run_spmd(4, prog)
        assert res.values == [3, 0, 1, 2]

    def test_self_send(self):
        def prog(comm):
            comm.send("me", dest=comm.rank)
            return comm.recv(source=comm.rank)

        assert run_spmd(1, prog)[0] == "me"

    def test_bad_peer_rejected(self):
        def prog(comm):
            comm.send(1, dest=99)

        with pytest.raises(Exception, match="out of range"):
            run_spmd(2, prog, timeout=5)

    def test_recv_timeout_is_deadlock_error(self):
        def prog(comm):
            if comm.rank == 1:
                comm.recv(source=0)  # nobody sends

        with pytest.raises(Exception) as exc_info:
            run_spmd(2, prog, timeout=0.3)
        assert isinstance(exc_info.value.original, DeadlockError)


class TestCollectives:
    def test_barrier_all_ranks(self):
        def prog(comm):
            comm.barrier()
            return comm.rank

        assert run_spmd(3, prog).values == [0, 1, 2]

    def test_bcast_from_nonzero_root(self):
        def prog(comm):
            data = "hello" if comm.rank == 2 else None
            return comm.bcast(data, root=2)

        assert run_spmd(4, prog).values == ["hello"] * 4

    def test_gather(self):
        def prog(comm):
            return comm.gather(comm.rank * 10, root=1)

        res = run_spmd(3, prog)
        assert res[0] is None
        assert res[1] == [0, 10, 20]
        assert res[2] is None

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(comm.rank**2)

        assert run_spmd(4, prog).values == [[0, 1, 4, 9]] * 4

    def test_scatter(self):
        def prog(comm):
            objs = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        assert run_spmd(3, prog).values == ["item0", "item1", "item2"]

    def test_scatter_wrong_count(self):
        def prog(comm):
            objs = [1] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        with pytest.raises(Exception, match="exactly"):
            run_spmd(2, prog, timeout=5)

    def test_alltoall_permutes_correctly(self):
        def prog(comm):
            send = [comm.rank * 100 + d for d in range(comm.size)]
            return comm.alltoall(send)

        res = run_spmd(4, prog)
        for r in range(4):
            assert res[r] == [src * 100 + r for src in range(4)]

    def test_alltoall_wrong_count(self):
        def prog(comm):
            return comm.alltoall([1, 2, 3])  # size is 2

        with pytest.raises(Exception, match="exactly"):
            run_spmd(2, prog, timeout=5)

    def test_reduce_default_sum(self):
        def prog(comm):
            return comm.reduce(np.full(3, comm.rank + 1.0), root=0)

        res = run_spmd(3, prog)
        np.testing.assert_array_equal(res[0], np.full(3, 6.0))
        assert res[1] is None

    def test_reduce_custom_op(self):
        def prog(comm):
            return comm.reduce(comm.rank + 1, op=lambda a, b: a * b, root=0)

        assert run_spmd(4, prog)[0] == 24

    def test_allreduce(self):
        def prog(comm):
            return comm.allreduce(comm.rank)

        assert run_spmd(5, prog).values == [10] * 5


class TestAlltoallv:
    def test_dense_alltoallv_matches_alltoall(self):
        def prog(comm):
            send = [comm.rank * 100 + d for d in range(comm.size)]
            return comm.alltoallv(send)

        res = run_spmd(4, prog)
        for r in range(4):
            assert res[r] == [src * 100 + r for src in range(4)]

    def test_uneven_counts(self):
        """Pairs exchange differently sized arrays — the v in alltoallv."""

        def prog(comm):
            send = [
                np.full(comm.rank + d + 1, comm.rank, dtype=np.float64)
                for d in range(comm.size)
            ]
            return comm.alltoallv(send)

        res = run_spmd(3, prog)
        for r in range(3):
            for src in range(3):
                np.testing.assert_array_equal(
                    res[r][src], np.full(src + r + 1, src, dtype=np.float64)
                )

    def test_none_entries_with_sources(self):
        """Sparse exchange: only rank 0 sends, everyone else stays silent."""

        def prog(comm):
            send = [None] * comm.size
            if comm.rank == 0:
                send = [f"to-{d}" for d in range(comm.size)]
            got = comm.alltoallv(send, sources=[0])
            return got

        res = run_spmd(3, prog)
        for r in range(1, 3):
            assert res[r][0] == f"to-{r}"
            assert res[r][1] is None and res[r][2] is None

    def test_all_none_is_a_valid_collective(self):
        def prog(comm):
            return comm.alltoallv([None] * comm.size, sources=[])

        assert run_spmd(3, prog).values == [[None] * 3] * 3

    def test_self_entry_none_skips_local_copy(self):
        def prog(comm):
            send = ["x"] * comm.size
            send[comm.rank] = None
            return comm.alltoallv(send)[comm.rank]

        assert run_spmd(2, prog).values == [None, None]

    def test_wrong_count_rejected(self):
        def prog(comm):
            return comm.alltoallv([1])  # size is 2

        with pytest.raises(Exception, match="exactly"):
            run_spmd(2, prog, timeout=5)

    def test_counts_one_alltoall_round(self):
        def prog(comm):
            comm.alltoallv([np.ones(2)] * comm.size)

        res = run_spmd(2, prog)
        assert res.stats.alltoall_rounds == 1


class TestPayloadAccounting:
    @staticmethod
    def _bytes_sent(payload):
        def prog(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1)
            else:
                comm.recv(source=0)

        res = run_spmd(2, prog)
        return res.stats.phase("default").bytes_by_pair[(0, 1)]

    def test_numpy_scalar_counted_by_nbytes(self):
        assert self._bytes_sent(np.complex128(1 + 2j)) == 16
        assert self._bytes_sent(np.float64(1.5)) == 8

    def test_list_of_numpy_scalars(self):
        assert self._bytes_sent([np.float64(1.0), np.float64(2.0)]) == 16

    def test_array_counted_by_nbytes(self):
        assert self._bytes_sent(np.zeros(10, dtype=np.complex128)) == 160
