"""Tests for the mini-ULFM layer: multi-rank failure aggregation,
``world.failed_ranks()``, and post-failure ``shrink()`` collectives.

Satellite of the survivable-SOI PR: when several ranks die in one run,
the :class:`SpmdError` report must carry EVERY rank's exception and
traceback (in rank order), not just the root cause — and survivors must
be able to form a shrunken communicator and keep running collectives
over the remaining membership.
"""

import pytest

from repro.simmpi import (
    FaultPlan,
    InjectedFault,
    RankFailedError,
    run_spmd,
)
from repro.simmpi.errors import SpmdError

GUARD_S = 20.0


class TestAggregatedFailureReport:
    def test_every_rank_present_in_rank_order(self):
        def body(comm):
            raise InjectedFault(f"rank {comm.rank} self-destructs")

        with pytest.raises(SpmdError) as ei:
            run_spmd(4, body, timeout=GUARD_S)
        err = ei.value
        assert [r for r, _ in err.failures] == [0, 1, 2, 3]
        assert all(isinstance(e, InjectedFault) for _, e in err.failures)
        assert "(4 ranks failed in total)" in str(err)
        for r in range(4):
            assert f"rank {r}: InjectedFault" in str(err)

    def test_tracebacks_captured_per_rank(self):
        def body(comm):
            if comm.rank % 2 == 0:
                raise ValueError(f"boom on {comm.rank}")
            comm.barrier()

        with pytest.raises(SpmdError) as ei:
            run_spmd(4, body, timeout=GUARD_S)
        tbs = ei.value.tracebacks
        assert set(tbs) == {r for r, _ in ei.value.failures}
        for r, exc in ei.value.failures:
            if isinstance(exc, ValueError):
                assert f"boom on {r}" in tbs[r]
                assert "ValueError" in tbs[r]

    def test_root_cause_contract_preserved(self):
        """``rank``/``original`` still name the root cause, so handlers
        written against RankFailure need no change."""

        def body(comm):
            if comm.rank == 2:
                raise ZeroDivisionError("the actual bug")
            comm.recv(source=2)

        with pytest.raises(SpmdError) as ei:
            run_spmd(3, body, timeout=GUARD_S)
        assert ei.value.rank == 2
        assert isinstance(ei.value.original, ZeroDivisionError)
        # ...while the aggregate still reports the collateral damage.
        assert len(ei.value.failures) == 3

    def test_single_failure_message_stays_terse(self):
        def body(comm):
            if comm.rank == 1:
                raise InjectedFault("solo")
            return comm.rank

        with pytest.raises(SpmdError) as ei:
            run_spmd(2, body, timeout=GUARD_S)
        assert "ranks failed in total" not in str(ei.value)


class TestFailedRanksAndShrink:
    def test_fault_free_failed_set_is_empty(self):
        def body(comm):
            comm.barrier()
            return comm.world.failed_ranks()

        out = run_spmd(4, body, timeout=GUARD_S)
        assert all(v == () for v in out.values)

    def test_survivors_agree_on_the_failed_set(self):
        def body(comm):
            with comm.phase("doom"):
                pass
            try:
                comm.barrier()
            except RankFailedError:
                pass
            return comm.world.failed_ranks()

        out = run_spmd(
            4,
            body,
            resilient=True,
            faults=FaultPlan().kill(2, phase="doom"),
            timeout=GUARD_S,
        )
        assert dict(out.failures).keys() == {2}
        for rank, got in enumerate(out.values):
            if rank != 2:
                assert got == (2,)

    def test_shrink_collectives_span_only_survivors(self):
        def body(comm):
            with comm.phase("doom"):
                pass
            try:
                comm.barrier()
            except RankFailedError:
                pass
            shrunk = comm.shrink()
            assert shrunk.size == 3
            return shrunk.allgather(comm.rank)

        out = run_spmd(
            4,
            body,
            resilient=True,
            faults=FaultPlan().kill(1, phase="doom"),
            timeout=GUARD_S,
        )
        for rank in (0, 2, 3):
            assert out.values[rank] == [0, 2, 3]

    def test_shrink_epochs_do_not_cross_talk(self):
        """Two successive shrink generations over the same survivors:
        traffic from the first round must not satisfy the second."""

        def body(comm):
            with comm.phase("doom"):
                pass
            try:
                comm.barrier()
            except RankFailedError:
                pass
            first = comm.shrink(epoch=0).allgather(("a", comm.rank))
            second = comm.shrink(epoch=1).allgather(("b", comm.rank))
            return first, second

        out = run_spmd(
            4,
            body,
            resilient=True,
            faults=FaultPlan().kill(3, phase="doom"),
            timeout=GUARD_S,
        )
        for rank in (0, 1, 2):
            first, second = out.values[rank]
            assert first == [("a", 0), ("a", 1), ("a", 2)]
            assert second == [("b", 0), ("b", 1), ("b", 2)]
