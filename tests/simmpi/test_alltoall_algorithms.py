"""Tests for the pluggable all-to-all schedules (`repro.simmpi.alltoall`).

The contract under test: ``bruck`` and ``hierarchical`` are pure
reschedules of the ``pairwise`` reference — bitwise-identical outputs
on every world shape (flat, even nodes, ragged tail) — and the measured
inter-node message counts match the analytic schedule model exactly.
"""

import numpy as np
import pytest

from repro.simmpi import (
    ALGORITHMS,
    ChaosSchedule,
    FaultPlan,
    TransportPolicy,
    predicted_inter_node_messages,
    resolve_algorithm,
    run_spmd,
)


def _exchange(nranks, rpn, algorithm, elems=8, **kwargs):
    def body(comm):
        gen = np.random.default_rng(991 + comm.rank)
        objs = [
            gen.standard_normal(elems) + 1j * gen.standard_normal(elems)
            for _ in range(nranks)
        ]
        return np.stack(comm.alltoall(objs, algorithm=algorithm))

    res = run_spmd(nranks, body, ranks_per_node=rpn, **kwargs)
    return np.stack(res.values), res.stats


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("algorithm", ["bruck", "hierarchical"])
    @pytest.mark.parametrize("nranks,rpn", [
        (4, None), (4, 2), (8, 4), (8, 2), (8, 3), (5, 2),
    ])
    def test_matches_pairwise_bitwise(self, algorithm, nranks, rpn):
        got, _ = _exchange(nranks, rpn, algorithm)
        ref, _ = _exchange(nranks, rpn, "pairwise")
        assert got.dtype == ref.dtype
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("algorithm", ["bruck", "hierarchical"])
    def test_non_ndarray_payloads(self, algorithm):
        def body(comm, algorithm=algorithm):
            objs = [{"from": comm.rank, "to": d} for d in range(4)]
            return comm.alltoall(objs, algorithm=algorithm)

        res = run_spmd(4, body, ranks_per_node=2)
        for rank, got in enumerate(res.values):
            assert got == [{"from": s, "to": rank} for s in range(4)]

    @pytest.mark.parametrize("algorithm", ["bruck", "hierarchical"])
    def test_single_rank_world(self, algorithm):
        def body(comm, algorithm=algorithm):
            return comm.alltoall([np.arange(3.0)], algorithm=algorithm)

        (out,) = run_spmd(1, body).values
        np.testing.assert_array_equal(out[0], np.arange(3.0))

    def test_wrong_length_rejected(self):
        def body(comm):
            with pytest.raises(ValueError):
                comm.alltoall([1, 2, 3], algorithm="bruck")

        run_spmd(2, body)


class TestAlgorithmResolution:
    def test_registry(self):
        assert ALGORITHMS == ("pairwise", "bruck", "hierarchical")

    def test_explicit_wins_over_default(self):
        assert resolve_algorithm("bruck") == "bruck"
        assert resolve_algorithm(None) == "pairwise"

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError):
            resolve_algorithm("ring")

        def body(comm):
            with pytest.raises(ValueError):
                comm.alltoall([0, 1], algorithm="ring")

        run_spmd(2, body)

    def test_world_default_applies_when_unspecified(self):
        def body(comm):
            gen = np.random.default_rng(5 + comm.rank)
            objs = [gen.standard_normal(4) for _ in range(4)]
            return np.stack(comm.alltoall(objs))  # no algorithm=

        hier = run_spmd(
            4, body, ranks_per_node=2, alltoall_algorithm="hierarchical"
        )
        pair = run_spmd(4, body, ranks_per_node=2)
        assert np.array_equal(np.stack(hier.values), np.stack(pair.values))
        # The default actually took effect: node-aggregated message count.
        assert hier.stats.total_inter_node_messages == (
            predicted_inter_node_messages(4, 2, "hierarchical")
        )

    def test_invalid_world_default_rejected_at_construction(self):
        with pytest.raises(ValueError):
            run_spmd(2, lambda comm: None, alltoall_algorithm="ring")

    def test_shrunk_communicator_rejects_non_pairwise(self):
        def body(comm):
            shrunk = comm.shrink()
            with pytest.raises(NotImplementedError):
                shrunk.alltoall([0, 1], algorithm="hierarchical")
            return shrunk.alltoall([comm.rank] * 2, algorithm="pairwise")

        res = run_spmd(2, body)
        assert res.values == [[0, 1], [0, 1]]


class TestMessageCountModel:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("nranks,rpn", [(8, 4), (8, 2), (16, 4), (8, 3)])
    def test_measured_matches_predicted(self, algorithm, nranks, rpn):
        _, stats = _exchange(nranks, rpn, algorithm)
        assert stats.total_inter_node_messages == (
            predicted_inter_node_messages(nranks, rpn, algorithm)
        )

    def test_hierarchical_collapses_p_squared_to_node_pairs(self):
        # P=16 as 4 nodes x 4: 16*12 pairwise inter-node messages vs
        # 4*3 node-pair messages — the (P/R)^2 collapse.
        assert predicted_inter_node_messages(16, 4, "pairwise") == 192
        assert predicted_inter_node_messages(16, 4, "hierarchical") == 12

    def test_payload_volume_is_algorithm_invariant(self):
        # Every off-node element crosses the fabric exactly once under
        # pairwise and hierarchical; headers are the only byte delta.
        _, pair = _exchange(8, 4, "pairwise", elems=64)
        _, hier = _exchange(8, 4, "hierarchical", elems=64)
        pair_payload = pair.total_inter_node_bytes - 64 * pair.total_inter_node_messages
        hier_payload = hier.total_inter_node_bytes - 64 * hier.total_inter_node_messages
        assert pair_payload == hier_payload
        assert hier.total_inter_node_bytes < pair.total_inter_node_bytes


class TestComposition:
    @pytest.mark.parametrize("algorithm", ["bruck", "hierarchical"])
    def test_survives_bitflips_under_reliable_transport(self, algorithm):
        policy = TransportPolicy(retry_timeout=0.05, max_retries=8)

        def body(comm, algorithm=algorithm):
            gen = np.random.default_rng(17 + comm.rank)
            objs = [gen.standard_normal(16) for _ in range(4)]
            return np.stack(comm.alltoall(objs, algorithm=algorithm))

        chaotic = run_spmd(
            4, body, ranks_per_node=2, transport=policy,
            faults=ChaosSchedule(seed=3, p_bitflip=0.2),
            timeout=30,
        )
        clean = run_spmd(4, body, ranks_per_node=2)
        assert np.array_equal(
            np.stack(chaotic.values), np.stack(clean.values)
        )

    @pytest.mark.parametrize("algorithm", ["bruck", "hierarchical"])
    def test_traced_run_is_bit_transparent_and_recorded(self, algorithm):
        from repro.trace import TraceRecorder

        def body(comm, algorithm=algorithm):
            gen = np.random.default_rng(29 + comm.rank)
            objs = [gen.standard_normal(8) for _ in range(4)]
            return np.stack(comm.alltoall(objs, algorithm=algorithm))

        rec = TraceRecorder()
        traced = run_spmd(4, body, ranks_per_node=2, trace=rec)
        plain = run_spmd(4, body, ranks_per_node=2)
        assert np.array_equal(np.stack(traced.values), np.stack(plain.values))
        assert rec.nevents > 0
        tl = rec.timeline()
        assert any(s.kind == "collective" for s in tl.spans)

    @pytest.mark.parametrize("algorithm", ["bruck", "hierarchical"])
    def test_verified_alltoall_accepts_algorithm(self, algorithm):
        from repro.parallel.selfcheck import verified_alltoall

        def body(comm, algorithm=algorithm):
            sendbufs = [
                np.full(8, 10 * comm.rank + d, dtype=np.complex128)
                for d in range(4)
            ]
            return np.stack(
                verified_alltoall(comm, sendbufs, algorithm=algorithm)
            )

        res = run_spmd(4, body, ranks_per_node=2)
        for rank, got in enumerate(res.values):
            ref = np.stack([
                np.full(8, 10 * s + rank, dtype=np.complex128) for s in range(4)
            ])
            np.testing.assert_array_equal(got, ref)

    def test_alltoall_rounds_counted_once_per_exchange(self):
        def body(comm):
            objs = [np.zeros(2) for _ in range(4)]
            comm.alltoall(objs, algorithm="hierarchical")
            comm.alltoall(objs, algorithm="bruck")

        res = run_spmd(4, body, ranks_per_node=2)
        assert res.stats.phase("default").alltoall_rounds == 2
