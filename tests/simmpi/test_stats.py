"""Tests for byte-accurate traffic accounting."""

import numpy as np

from repro.simmpi import TrafficStats, run_spmd


class TestByteAccounting:
    def test_numpy_bytes_counted_exactly(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, dtype=np.complex128), dest=1)
            else:
                comm.recv(source=0)

        res = run_spmd(2, prog)
        assert res.stats.phase("default").bytes_by_pair[(0, 1)] == 1600

    def test_offnode_excludes_self_sends(self):
        def prog(comm):
            return comm.alltoall(
                [np.zeros(10, dtype=np.float64) for _ in range(comm.size)]
            )

        res = run_spmd(2, prog)
        ph = res.stats.phase("default")
        # each rank: 1 off-node (80 B) + 1 self (80 B)
        assert ph.offnode_bytes() == 160
        assert ph.total_bytes == 320

    def test_max_pair_bytes(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(4), dest=1)
                comm.send(np.zeros(100), dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
                comm.recv(source=0)

        res = run_spmd(2, prog)
        assert res.stats.phase("default").max_pair_bytes() == 832  # 32 + 800


class TestPhases:
    def test_phase_labels_partition_traffic(self):
        def prog(comm):
            dst = 1 - comm.rank
            with comm.phase("alpha"):
                comm.send(np.zeros(2), dest=dst)
                comm.recv(source=dst)
            with comm.phase("beta"):
                comm.send(np.zeros(4), dest=dst)
                comm.recv(source=dst)

        res = run_spmd(2, prog)
        assert res.stats.phase("alpha").total_bytes == 2 * 16
        assert res.stats.phase("beta").total_bytes == 2 * 32
        assert sorted(res.stats.phases()) == ["alpha", "beta"]

    def test_nested_phases_restore(self):
        def prog(comm):
            dst = 1 - comm.rank
            with comm.phase("outer"):
                with comm.phase("inner"):
                    comm.send(b"xx", dest=dst)
                    comm.recv(source=dst)
                comm.send(b"yyyy", dest=dst)
                comm.recv(source=dst)

        res = run_spmd(2, prog)
        assert res.stats.phase("inner").total_bytes == 4
        assert res.stats.phase("outer").total_bytes == 8

    def test_alltoall_round_counted_once_per_collective(self):
        def prog(comm):
            with comm.phase("x"):
                comm.alltoall([0] * comm.size)
                comm.alltoall([1] * comm.size)

        res = run_spmd(4, prog)
        assert res.stats.phase("x").alltoall_rounds == 2
        assert res.stats.alltoall_rounds == 2


class TestSummary:
    def test_summary_mentions_phases(self):
        def prog(comm):
            with comm.phase("transpose-1"):
                comm.alltoall([np.zeros(1) for _ in range(comm.size)])

        res = run_spmd(2, prog)
        text = res.stats.summary()
        assert "transpose-1" in text
        assert "all-to-all" in text

    def test_standalone_stats_object(self):
        stats = TrafficStats()
        stats.record_message("p", 0, 1, 100)
        stats.record_message("p", 1, 1, 50)
        assert stats.phase("p").total_bytes == 150
        assert stats.phase("p").offnode_bytes() == 100
        assert stats.total_bytes == 150
