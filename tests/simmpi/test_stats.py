"""Tests for byte-accurate traffic accounting."""

import numpy as np

from repro.simmpi import TrafficStats, run_spmd


class TestByteAccounting:
    def test_numpy_bytes_counted_exactly(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, dtype=np.complex128), dest=1)
            else:
                comm.recv(source=0)

        res = run_spmd(2, prog)
        assert res.stats.phase("default").bytes_by_pair[(0, 1)] == 1600

    def test_offnode_excludes_self_sends(self):
        def prog(comm):
            return comm.alltoall(
                [np.zeros(10, dtype=np.float64) for _ in range(comm.size)]
            )

        res = run_spmd(2, prog)
        ph = res.stats.phase("default")
        # each rank: 1 off-node (80 B) + 1 self (80 B)
        assert ph.offnode_bytes() == 160
        assert ph.total_bytes == 320

    def test_max_pair_bytes(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(4), dest=1)
                comm.send(np.zeros(100), dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
                comm.recv(source=0)

        res = run_spmd(2, prog)
        assert res.stats.phase("default").max_pair_bytes() == 832  # 32 + 800


class TestPhases:
    def test_phase_labels_partition_traffic(self):
        def prog(comm):
            dst = 1 - comm.rank
            with comm.phase("alpha"):
                comm.send(np.zeros(2), dest=dst)
                comm.recv(source=dst)
            with comm.phase("beta"):
                comm.send(np.zeros(4), dest=dst)
                comm.recv(source=dst)

        res = run_spmd(2, prog)
        assert res.stats.phase("alpha").total_bytes == 2 * 16
        assert res.stats.phase("beta").total_bytes == 2 * 32
        assert sorted(res.stats.phases()) == ["alpha", "beta"]

    def test_nested_phases_restore(self):
        def prog(comm):
            dst = 1 - comm.rank
            with comm.phase("outer"):
                with comm.phase("inner"):
                    comm.send(b"xx", dest=dst)
                    comm.recv(source=dst)
                comm.send(b"yyyy", dest=dst)
                comm.recv(source=dst)

        res = run_spmd(2, prog)
        assert res.stats.phase("inner").total_bytes == 4
        assert res.stats.phase("outer").total_bytes == 8

    def test_alltoall_round_counted_once_per_collective(self):
        def prog(comm):
            with comm.phase("x"):
                comm.alltoall([0] * comm.size)
                comm.alltoall([1] * comm.size)

        res = run_spmd(4, prog)
        assert res.stats.phase("x").alltoall_rounds == 2
        assert res.stats.alltoall_rounds == 2


class TestSummary:
    def test_summary_mentions_phases(self):
        def prog(comm):
            with comm.phase("transpose-1"):
                comm.alltoall([np.zeros(1) for _ in range(comm.size)])

        res = run_spmd(2, prog)
        text = res.stats.summary()
        assert "transpose-1" in text
        assert "all-to-all" in text

    def test_standalone_stats_object(self):
        stats = TrafficStats()
        stats.record_message("p", 0, 1, 100)
        stats.record_message("p", 1, 1, 50)
        assert stats.phase("p").total_bytes == 150
        assert stats.phase("p").offnode_bytes() == 100
        assert stats.total_bytes == 150


class TestAsDictRoundTrip:
    """JSON-safe export of traffic statistics (satellite of the trace PR)."""

    def _stats_from_run(self):
        def prog(comm):
            with comm.phase("exchange"):
                comm.alltoall([np.zeros(16) for _ in range(comm.size)])
            with comm.phase("ring"):
                right = (comm.rank + 1) % comm.size
                left = (comm.rank - 1) % comm.size
                comm.sendrecv(np.zeros(8), dest=right, source=left)

        return run_spmd(3, prog).stats

    def test_pair_keys_are_json_strings(self):
        import json

        d = self._stats_from_run().as_dict()
        json.dumps(d)  # must serialise without a custom encoder
        pairs = d["phases"]["exchange"]["bytes_by_pair"]
        assert pairs  # traffic was recorded
        assert all("->" in k for k in pairs)
        assert pairs["0->1"] == 128

    def test_round_trip_preserves_everything(self):
        stats = self._stats_from_run()
        clone = TrafficStats.from_dict(stats.as_dict())
        assert clone.as_dict() == stats.as_dict()
        assert clone.phase("exchange").bytes_by_pair == (
            stats.phase("exchange").bytes_by_pair
        )
        assert clone.phase("exchange").alltoall_rounds == 1
        assert clone.total_offnode_bytes == stats.total_offnode_bytes

    def test_reliability_counters_survive_round_trip(self):
        stats = TrafficStats()
        stats.record_message("p", 0, 1, 100)
        stats.record_retransmit("p", 0, 1, 100)
        stats.record_corrupt("p")
        stats.record_duplicate("p")
        stats.record_ack("p", 12)
        clone = TrafficStats.from_dict(stats.as_dict())
        ph = clone.phase("p")
        assert ph.retransmits == 1 and ph.retransmit_bytes == 100
        assert ph.corrupt_detected == 1 and ph.duplicates_discarded == 1
        assert ph.acks == 1 and ph.control_bytes == 12

    def test_recovery_counters_survive_round_trip(self):
        """Resilience accounting (survivable-SOI PR): recovery bytes,
        recomputed flops, and detections must export and re-import."""
        stats = TrafficStats()
        stats.record_failure_detected("alltoall")
        stats.record_recovery("recover", nbytes=4096, flops=125_000)
        stats.record_recovery("recover", nbytes=512)
        clone = TrafficStats.from_dict(stats.as_dict())
        assert clone.phase("alltoall").detected_failures == 1
        assert clone.phase("recover").recovery_bytes == 4608
        assert clone.phase("recover").recovery_flops == 125_000
        assert clone.total_recovery_bytes == 4608
        assert clone.total_recovery_flops == 125_000
        assert clone.total_detected_failures == 1
        assert clone.as_dict() == stats.as_dict()

    def test_recovery_counters_default_to_zero(self):
        stats = self._stats_from_run()
        assert stats.total_recovery_bytes == 0
        assert stats.total_recovery_flops == 0
        assert stats.total_detected_failures == 0
        clone = TrafficStats.from_dict(stats.as_dict())
        assert clone.total_recovery_bytes == 0

    def test_phase_traffic_as_dict_is_sorted(self):
        from repro.simmpi.stats import PhaseTraffic

        ph = PhaseTraffic()
        ph.bytes_by_pair[(2, 0)] = 5
        ph.bytes_by_pair[(0, 1)] = 3
        d = ph.as_dict()
        assert list(d["bytes_by_pair"]) == ["0->1", "2->0"]
        assert PhaseTraffic.from_dict(d).bytes_by_pair == ph.bytes_by_pair


class TestRequestDepth:
    """Outstanding-request depth accounting (nonblocking PR satellite)."""

    def test_post_claim_histogram(self):
        stats = TrafficStats()
        stats.record_request_post("p", 0)
        stats.record_request_post("p", 0)
        stats.record_request_complete("p", 0)
        stats.record_request_post("p", 0)
        ph = stats.phase("p")
        assert ph.max_outstanding == 2
        # Transitions: ->1, ->2, ->1, ->2.
        assert ph.time_at_depth == {1: 2, 2: 2}

    def test_depth_is_per_rank_per_phase(self):
        stats = TrafficStats()
        stats.record_request_post("p", 0)
        stats.record_request_post("p", 1)  # a different rank's queue
        stats.record_request_post("q", 0)  # a different phase's queue
        assert stats.phase("p").max_outstanding == 1
        assert stats.phase("q").max_outstanding == 1

    def test_claim_floors_at_zero(self):
        stats = TrafficStats()
        stats.record_request_complete("p", 0)
        assert stats.phase("p").max_outstanding == 0
        assert stats.phase("p").time_at_depth == {0: 1}

    def test_depth_survives_round_trip(self):
        stats = TrafficStats()
        stats.record_message("p", 0, 1, 64)
        for _ in range(3):
            stats.record_request_post("p", 1)
        stats.record_request_complete("p", 1)
        clone = TrafficStats.from_dict(stats.as_dict())
        ph = clone.phase("p")
        assert ph.max_outstanding == 3
        assert ph.time_at_depth == stats.phase("p").time_at_depth
        assert all(isinstance(k, int) for k in ph.time_at_depth)
        assert clone.as_dict() == stats.as_dict()

    def test_depth_keys_are_json_strings(self):
        import json

        stats = TrafficStats()
        stats.record_request_post("p", 0)
        d = stats.as_dict()
        json.dumps(d)
        assert d["phases"]["p"]["max_outstanding"] == 1
        assert list(d["phases"]["p"]["time_at_depth"]) == ["1"]
