"""Tests for the SPMD launcher: results, failure semantics, isolation."""

import threading

import numpy as np
import pytest

from repro.simmpi import InjectedFault, RankFailure, run_spmd


class TestResults:
    def test_values_ordered_by_rank(self):
        res = run_spmd(4, lambda comm: comm.rank * 2)
        assert res.values == [0, 2, 4, 6]

    def test_result_indexing_and_iteration(self):
        res = run_spmd(3, lambda comm: comm.rank)
        assert res[2] == 2
        assert list(res) == [0, 1, 2]

    def test_extra_args_forwarded(self):
        res = run_spmd(2, lambda comm, a, b=0: (comm.rank, a, b), 7, b=9)
        assert res.values == [(0, 7, 9), (1, 7, 9)]

    def test_single_rank_world(self):
        assert run_spmd(1, lambda comm: comm.allreduce(5)).values == [5]

    def test_threads_really_run_concurrently(self):
        """Ranks must not be serialised: a rendezvous between two ranks
        can only complete if both are alive at once."""
        barrier = threading.Barrier(2, timeout=10)

        def prog(comm):
            barrier.wait()
            return True

        assert run_spmd(2, prog).values == [True, True]


class TestFailurePropagation:
    def test_original_exception_surfaces(self):
        def prog(comm):
            if comm.rank == 2:
                raise KeyError("boom")
            comm.barrier()

        with pytest.raises(RankFailure) as info:
            run_spmd(3, prog, timeout=5)
        assert info.value.rank == 2
        assert isinstance(info.value.original, KeyError)

    def test_blocked_ranks_unwind(self):
        """Ranks stuck in recv must not hang the whole run."""

        def prog(comm):
            if comm.rank == 0:
                raise ValueError("dead")
            comm.recv(source=0)

        with pytest.raises(RankFailure):
            run_spmd(3, prog, timeout=30)  # must return well before timeout

    def test_barrier_unwinds_on_failure(self):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("x")
            comm.barrier()

        with pytest.raises(RankFailure):
            run_spmd(2, prog, timeout=30)

    def test_root_cause_preferred_over_secondary_aborts(self):
        def prog(comm):
            if comm.rank == 1:
                raise ZeroDivisionError("root cause")
            comm.recv(source=1)

        with pytest.raises(RankFailure) as info:
            run_spmd(2, prog, timeout=5)
        assert isinstance(info.value.original, ZeroDivisionError)


class TestFaultInjection:
    def test_payload_corruption_hook(self):
        def corrupt(src, dst, tag, payload):
            if isinstance(payload, np.ndarray):
                return payload * 0
            return payload

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.ones(4), dest=1)
                return None
            return comm.recv(source=0)

        res = run_spmd(2, prog, fault_hook=corrupt)
        np.testing.assert_array_equal(res[1], np.zeros(4))

    def test_raising_hook_aborts_run(self):
        def killer(src, dst, tag, payload):
            raise InjectedFault("link down")

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, dest=1)
            else:
                comm.recv(source=0)

        with pytest.raises(RankFailure) as info:
            run_spmd(2, prog, fault_hook=killer, timeout=5)
        assert isinstance(info.value.original, InjectedFault)

    def test_selective_fault_only_affects_target_link(self):
        def drop_0_to_1(src, dst, tag, payload):
            if (src, dst) == (0, 1) and tag >= 0:
                raise InjectedFault("0->1 cut")
            return payload

        def prog(comm):  # only uses 1 -> 0
            if comm.rank == 1:
                comm.send("ok", dest=0)
                return None
            return comm.recv(source=1)

        res = run_spmd(2, prog, fault_hook=drop_0_to_1)
        assert res[0] == "ok"


class TestStatsIsolation:
    def test_each_run_gets_fresh_stats(self):
        res1 = run_spmd(2, lambda comm: comm.alltoall([1, 2]))
        res2 = run_spmd(2, lambda comm: comm.rank)
        assert res1.stats.alltoall_rounds == 1
        assert res2.stats.alltoall_rounds == 0
