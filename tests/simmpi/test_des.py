"""Composition suite for the discrete-event engine (PR 9).

``run_spmd(..., engine="des")`` must execute unchanged rank programs —
point-to-point, nonblocking requests, splits, fault injection,
collective timeouts, shrink/ULFM recovery, tracing — with the same
*semantics* as the thread engine, deterministically, in virtual time.
The bitwise output/traffic identity lives in the ``des`` conformance
group; this file pins the behavioural compositions and the
DES-specific observables (virtual clocks, vessel reuse, determinism).
"""

import time

import numpy as np
import pytest

from repro.simmpi import (
    CollectiveTimeoutError,
    DeadlockError,
    FaultPlan,
    RankFailedError,
    RankFailure,
    run_spmd,
    waitall,
)
from repro.trace import TraceRecorder

GUARD_S = 8.0


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_spmd(2, lambda comm: None, engine="fibers")

    def test_thread_engine_has_no_virtual_clock(self):
        res = run_spmd(2, lambda comm: comm.barrier())
        assert res.virtual_time_s is None

    def test_des_engine_reports_virtual_makespan(self):
        def body(comm):
            comm.barrier()
            if comm.rank == 0:
                comm.send(np.arange(64.0), 1)
            elif comm.rank == 1:
                comm.recv(0)

        res = run_spmd(2, body, engine="des")
        assert res.virtual_time_s is not None and res.virtual_time_s > 0.0

    def test_wall_time_decouples_from_virtual_time(self):
        """A second of modelled link time costs no wall-clock second."""

        def body(comm):
            if comm.rank == 0:
                comm.send(np.arange(1024.0), 1)
            else:
                comm.recv(0)

        t0 = time.perf_counter()
        res = run_spmd(
            2, body, engine="des", link_latency=0.5, link_bandwidth=1e9
        )
        assert time.perf_counter() - t0 < 2.0
        assert res.virtual_time_s >= 0.5


class TestDeterminism:
    def test_repeat_runs_identical(self):
        def body(comm):
            rng = np.random.default_rng(comm.rank)
            objs = [rng.standard_normal(8) for _ in range(comm.size)]
            pieces = comm.alltoall(objs)
            return np.concatenate(pieces)

        r1 = run_spmd(8, body, ranks_per_node=3, engine="des")
        r2 = run_spmd(8, body, ranks_per_node=3, engine="des")
        for a, b in zip(r1.values, r2.values):
            assert a.tobytes() == b.tobytes()
        assert r1.stats.as_dict() == r2.stats.as_dict()
        assert r1.virtual_time_s == r2.virtual_time_s

    def test_start_order_permutation_does_not_change_results(self):
        from repro.check import ScheduleController

        def body(comm):
            return comm.allgather(comm.rank * 2)

        ref = run_spmd(6, body, engine="des")
        for seed in range(3):
            res = run_spmd(
                6, body, engine="des",
                schedule=ScheduleController(seed=seed, p_hold=0.0, p_jitter=0.0),
            )
            assert res.values == ref.values


class TestNonblockingUnderDes:
    def test_isend_irecv_waitall_ring(self):
        def body(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            s = comm.isend(np.full(16, comm.rank, dtype=float), right, tag=3)
            r = comm.irecv(left, tag=3)
            waitall([s, r], timeout=GUARD_S)
            return float(r.wait()[0])

        res = run_spmd(6, body, engine="des")
        assert res.values == [(r - 1) % 6 for r in range(6)]

    def test_ialltoallv_under_des(self):
        def body(comm):
            objs = [np.full(4, comm.rank, dtype=float) for _ in range(comm.size)]
            pieces = comm.ialltoallv(objs).wait(timeout=GUARD_S)
            return [int(p[0]) for p in pieces]

        res = run_spmd(4, body, engine="des")
        assert all(v == [0, 1, 2, 3] for v in res.values)


class TestSplitsUnderDes:
    def test_split_and_subcomm_exchange(self):
        def body(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return sub.allgather(comm.rank)

        res = run_spmd(6, body, engine="des")
        assert res.values[0] == [0, 2, 4]
        assert res.values[1] == [1, 3, 5]

    def test_split_by_node_leaders(self):
        def body(comm):
            node_comm, leaders = comm.split_by_node()
            local = node_comm.allgather(comm.rank)
            return local, leaders is not None

        res = run_spmd(6, body, ranks_per_node=3, engine="des")
        assert res.values[0][0] == [0, 1, 2]
        assert res.values[3][0] == [3, 4, 5]
        # Exactly the node leaders get the leader communicator.
        assert [v[1] for v in res.values] == [True, False, False] * 2


class TestFaultInjectionUnderDes:
    def test_kill_surfaces_rank_failed_on_peers(self):
        def body(comm):
            with comm.phase("doom"):
                pass
            try:
                comm.barrier()
            except RankFailedError as exc:
                return exc.ranks
            return None

        res = run_spmd(
            4, body, resilient=True, engine="des",
            faults=FaultPlan().kill(2, phase="doom"), timeout=GUARD_S,
        )
        assert dict(res.failures).keys() == {2}
        for rank in (0, 1, 3):
            assert res.values[rank] == (2,)

    def test_kill_surfaces_on_subcomm_peers(self):
        """A death is visible to the victim's sub-communicator peers as a
        structured RankFailedError, not a hang."""

        def body(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            with comm.phase("doom"):
                pass
            try:
                # rank 2 (color 0) dies; its sub-comm peers 0 and 4 must
                # see the structured failure on the sub-comm collective.
                got = sub.allgather(comm.rank)
            except RankFailedError as exc:
                return ("failed", exc.ranks)
            return ("ok", got)

        res = run_spmd(
            6, body, resilient=True, engine="des",
            faults=FaultPlan().kill(2, phase="doom"), timeout=GUARD_S,
        )
        assert dict(res.failures).keys() == {2}
        for rank in (0, 4):
            kind, ranks = res.values[rank]
            assert kind == "failed" and 2 in ranks
        # The odd color never talks to rank 2 inside its sub-comm.

    def test_shrink_and_recover_under_des(self):
        def body(comm):
            with comm.phase("doom"):
                pass
            try:
                comm.barrier()
            except RankFailedError:
                pass
            shrunk = comm.shrink()
            return shrunk.allgather(comm.rank)

        res = run_spmd(
            4, body, resilient=True, engine="des",
            faults=FaultPlan().kill(1, phase="doom"), timeout=GUARD_S,
        )
        for rank in (0, 2, 3):
            assert res.values[rank] == [0, 2, 3]

    def test_wire_faults_with_transport_recover_bitwise(self):
        from repro.simmpi import TransportPolicy

        def body(comm):
            if comm.rank == 0:
                with comm.phase("payload"):
                    comm.send(np.arange(32.0), 1, tag=5)
                return None
            with comm.phase("payload"):
                return comm.recv(0, tag=5, timeout=GUARD_S)

        faults = FaultPlan().drop(phase="payload", src=0, dst=1)
        res = run_spmd(
            2, body, engine="des", faults=faults,
            transport=TransportPolicy(), timeout=GUARD_S,
        )
        np.testing.assert_array_equal(res.values[1], np.arange(32.0))
        assert res.stats.total_retransmits >= 1


class TestCollectiveTimeoutsUnderDes:
    def test_recv_expiry_is_deterministic_deadlock(self):
        """The virtual clock advances to the deadline; no wall wait."""

        def body(comm):
            if comm.rank == 0:
                comm.recv(1, tag=7, timeout=0.25)
            return "survived"

        t0 = time.perf_counter()
        res = run_spmd(2, body, resilient=True, engine="des", timeout=GUARD_S)
        assert time.perf_counter() - t0 < GUARD_S
        err = dict(res.failures)[0]
        assert isinstance(err, DeadlockError)
        assert res.values[1] == "survived"
        # Expiry happened *in virtual time*: the makespan includes it.
        assert res.virtual_time_s >= 0.25

    def test_barrier_expiry_is_collective_timeout_like_threads(self):
        def body(comm):
            if comm.rank == 0:
                comm.barrier(timeout=0.2)
            else:
                # Alive but late: parked on a recv that expires after the
                # barrier budget (0.6 virtual/wall seconds vs 0.2), so the
                # barrier never completes and nobody is dead when it expires.
                try:
                    comm.recv(0, tag=9, timeout=0.6)
                except (DeadlockError, RankFailedError):
                    pass
                return "survived"

        failures = {}
        for engine in ("thread", "des"):
            res = run_spmd(
                2, body, resilient=True, engine=engine, timeout=GUARD_S
            )
            failures[engine] = type(dict(res.failures)[0])
            assert res.values[1] == "survived"
        # Same structured failure class on both engines.
        assert failures["des"] is failures["thread"] is CollectiveTimeoutError

    def test_broken_by_death_is_rank_failed_not_timeout(self):
        def body(comm):
            if comm.rank == 1:
                with comm.phase("doom"):
                    pass
                return None
            try:
                comm.barrier(timeout=GUARD_S)
            except RankFailedError as exc:
                return exc.ranks
            raise AssertionError("barrier must surface the death")

        res = run_spmd(
            2, body, resilient=True, engine="des",
            faults=FaultPlan().kill(1, phase="doom"), timeout=GUARD_S,
        )
        assert res.values[0] == (1,)

    def test_missing_send_is_deadlock_without_wall_wait(self):
        def prog(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=7)

        t0 = time.perf_counter()
        with pytest.raises(RankFailure) as info:
            run_spmd(2, prog, engine="des", timeout=5.0)
        # Five virtual seconds of budget, near-zero wall seconds.
        assert time.perf_counter() - t0 < 2.0
        assert isinstance(info.value.original, DeadlockError)
        assert "tag=7" in str(info.value.original)


class TestTraceCaptureUnderDes:
    def test_trace_records_compute_and_wire_spans(self):
        rec = TraceRecorder()

        def body(comm):
            if comm.rank == 0:
                comm.send(np.arange(128.0), 1, tag=1)
            else:
                comm.recv(0, tag=1)
            comm.barrier()

        run_spmd(2, body, trace=rec, engine="des")
        assert rec.nevents > 0
        tl = rec.timeline()
        assert tl.makespan > 0.0
        kinds = {s.kind for s in tl.spans}
        assert "send" in kinds or "xfer" in kinds or len(kinds) >= 2


class TestScaleSmoke:
    def test_many_ranks_execute_quickly(self):
        """Hundreds of ranks on a handful of vessels: the point of DES."""

        def body(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank, right, tag=1)
            got = comm.recv(left, tag=1, timeout=GUARD_S)
            return got

        t0 = time.perf_counter()
        res = run_spmd(256, body, ranks_per_node=16, engine="des")
        assert time.perf_counter() - t0 < 30.0
        assert res.values == [(r - 1) % 256 for r in range(256)]
