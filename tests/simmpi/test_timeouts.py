"""Timeout semantics of the collective and point-to-point seams.

The contract (ISSUE: robustness): an explicit ``timeout=`` bounds the
operation and expires with a *structured* error — never a hang — while a
peer known dead short-circuits immediately, regardless of the budget.
Fault-free runs must never time out spuriously, under any fuzzed
schedule.

``resilient=True`` runs return a *partial* :class:`SpmdResult` when at
least one rank completes, so a single rank's timeout surfaces in
``result.failures`` rather than aborting the world.
"""

import time

import numpy as np
import pytest

from repro.check.schedules import ScheduleController
from repro.simmpi import (
    CollectiveTimeoutError,
    DeadlockError,
    FaultPlan,
    RankFailedError,
    run_spmd,
    waitany,
)

#: Wall guard on every scenario in this file: timeouts must fire in
#: bounded time, so the run itself is bounded too.
GUARD_S = 20.0


class TestRecvTimeout:
    def test_expiry_is_a_structured_deadlock(self):
        def body(comm):
            if comm.rank == 0:
                comm.recv(1, tag=7, timeout=0.15)
            else:
                time.sleep(0.8)  # alive but silent past rank 0's budget
                return "survived"

        t0 = time.perf_counter()
        out = run_spmd(2, body, resilient=True, timeout=GUARD_S)
        assert time.perf_counter() - t0 < GUARD_S
        err = dict(out.failures)[0]
        assert isinstance(err, DeadlockError)
        assert "timed out" in str(err)
        assert out.values[1] == "survived"
        assert out.degraded

    def test_dead_peer_short_circuits_before_the_budget(self):
        def body(comm):
            if comm.rank == 1:
                with comm.phase("doom"):
                    pass
                return None
            t0 = time.perf_counter()
            try:
                comm.recv(1, tag=7, timeout=GUARD_S)
            except RankFailedError as exc:
                return (time.perf_counter() - t0, exc.ranks)
            raise AssertionError("recv from a dead peer must raise")

        out = run_spmd(
            2,
            body,
            resilient=True,
            faults=FaultPlan().kill(1, phase="doom"),
            timeout=GUARD_S,
        )
        elapsed, ranks = out.values[0]
        assert ranks == (1,)
        assert elapsed < GUARD_S / 2  # detection, not budget expiry

    @pytest.mark.parametrize("seed", range(3))
    def test_expiry_is_deterministic_under_fuzzed_schedules(self, seed):
        def body(comm):
            if comm.rank == 0:
                comm.recv(1, tag=7, timeout=0.15)
            else:
                time.sleep(0.8)

        out = run_spmd(
            2,
            body,
            resilient=True,
            schedule=ScheduleController(seed=seed),
            timeout=GUARD_S,
        )
        assert isinstance(dict(out.failures)[0], DeadlockError)


class TestRequestWaitTimeout:
    def test_irecv_wait_expiry(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.irecv(1, tag=3)
                req.wait(timeout=0.15)
            else:
                time.sleep(0.8)

        out = run_spmd(2, body, resilient=True, timeout=GUARD_S)
        assert isinstance(dict(out.failures)[0], DeadlockError)

    def test_waitany_expiry_and_dead_peer(self):
        def body(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(1, tag=t) for t in (3, 4)]
                try:
                    waitany(reqs, timeout=0.15)
                except DeadlockError as exc:
                    assert "waitany" in str(exc)
                else:
                    raise AssertionError("waitany must time out")
                # Now the peer dies: the SAME pending requests must
                # surface RankFailedError, not another timeout.
                try:
                    waitany(reqs, timeout=GUARD_S)
                except RankFailedError as exc:
                    return exc.ranks
                raise AssertionError("waitany must name the dead peer")
            time.sleep(0.5)
            with comm.phase("doom"):
                pass

        out = run_spmd(
            2,
            body,
            resilient=True,
            faults=FaultPlan().kill(1, phase="doom"),
            timeout=GUARD_S,
        )
        assert out.values[0] == (1,)


class TestBarrierTimeout:
    def test_expiry_with_nobody_dead_is_collective_timeout(self):
        def body(comm):
            if comm.rank == 0:
                comm.barrier(timeout=0.15)
            else:
                time.sleep(0.8)
                try:
                    comm.barrier(timeout=0.1)  # broken by rank 0's expiry
                except (DeadlockError, RankFailedError):
                    pass
                return "survived"

        out = run_spmd(2, body, resilient=True, timeout=GUARD_S)
        err = dict(out.failures)[0]
        assert type(err) is CollectiveTimeoutError
        assert "barrier" in str(err)
        assert out.values[1] == "survived"

    def test_broken_by_death_is_rank_failed_not_timeout(self):
        def body(comm):
            if comm.rank == 1:
                with comm.phase("doom"):
                    pass
                return None
            try:
                comm.barrier(timeout=GUARD_S)
            except RankFailedError as exc:
                return exc.ranks
            raise AssertionError("barrier must surface the death")

        out = run_spmd(
            2,
            body,
            resilient=True,
            faults=FaultPlan().kill(1, phase="doom"),
            timeout=GUARD_S,
        )
        assert out.values[0] == (1,)


class TestIalltoallvTimeout:
    def test_bounded_wait_expiry_is_collective_timeout(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.ialltoallv([None, None], sources=[1])
                req.wait(timeout=0.15)
            else:
                comm.ialltoallv([None, None], sources=[]).wait()
                time.sleep(0.8)  # alive, but never sends
                return "survived"

        out = run_spmd(2, body, resilient=True, timeout=GUARD_S)
        err = dict(out.failures)[0]
        assert type(err) is CollectiveTimeoutError
        assert "collective" in str(err)
        assert out.values[1] == "survived"


class TestNoSpuriousTimeouts:
    @pytest.mark.parametrize("seed", range(10))
    def test_fault_free_exchange_never_times_out(self, seed):
        """Generously bounded ops complete under 10 fuzzed schedules."""

        def body(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.arange(8) + comm.rank, right, tag=1)
            got = comm.recv(left, tag=1, timeout=GUARD_S)
            comm.barrier(timeout=GUARD_S)
            objs = [np.full(4, comm.rank) for _ in range(comm.size)]
            pieces = comm.ialltoallv(objs).wait(timeout=GUARD_S)
            return got[0], [int(p[0]) for p in pieces]

        out = run_spmd(
            4,
            body,
            resilient=True,
            schedule=ScheduleController(seed=seed),
            timeout=GUARD_S,
        )
        assert not out.degraded
        for rank in range(4):
            first, gathered = out.values[rank]
            assert first == (rank - 1) % 4
            assert gathered == [0, 1, 2, 3]
