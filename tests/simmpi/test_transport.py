"""Tests for the reliable transport (`TransportPolicy`): recovery, accounting,
typed failure, and seed-reproducibility of the recovery cost."""

import numpy as np
import pytest

from repro.simmpi import (
    ChaosSchedule,
    CorruptMessageError,
    FaultPlan,
    RankFailure,
    RetryExhaustedError,
    TransportPolicy,
    run_spmd,
)

# Impatient policy: tests exercise retransmission, not wall-clock patience.
QUICK = TransportPolicy(retry_timeout=0.02, max_retries=6)

PAYLOAD = np.arange(4, dtype=np.float64)  # 32 bytes


def _pair_prog(comm):
    """Rank 0 sends two arrays to rank 1; rank 1 returns them."""
    if comm.rank == 0:
        comm.send(PAYLOAD.copy(), dest=1)
        comm.send(PAYLOAD.copy() + 1, dest=1)
        return None
    return [comm.recv(source=0), comm.recv(source=0)]


def _assert_pair_ok(res):
    np.testing.assert_array_equal(res[1][0], PAYLOAD)
    np.testing.assert_array_equal(res[1][1], PAYLOAD + 1)


class TestRecovery:
    def test_fault_free_no_recovery_traffic(self):
        res = run_spmd(2, _pair_prog, transport=QUICK)
        _assert_pair_ok(res)
        assert res.stats.total_retransmits == 0
        assert res.stats.total_corrupt_detected == 0

    def test_drop_recovered_and_charged(self):
        res = run_spmd(2, _pair_prog, faults=FaultPlan().drop(src=0, dst=1), transport=QUICK)
        _assert_pair_ok(res)
        assert res.stats.total_retransmits == 1
        assert res.stats.total_retransmit_bytes == PAYLOAD.nbytes

    def test_bitflip_detected_and_recovered(self):
        res = run_spmd(2, _pair_prog, faults=FaultPlan().bitflip(src=0, dst=1), transport=QUICK)
        _assert_pair_ok(res)
        assert res.stats.total_corrupt_detected >= 1
        assert res.stats.total_retransmits >= 1

    def test_truncation_detected_and_recovered(self):
        res = run_spmd(2, _pair_prog, faults=FaultPlan().truncate(src=0, dst=1), transport=QUICK)
        _assert_pair_ok(res)
        assert res.stats.total_corrupt_detected >= 1

    def test_duplicate_discarded(self):
        res = run_spmd(2, _pair_prog, faults=FaultPlan().duplicate(src=0, dst=1), transport=QUICK)
        _assert_pair_ok(res)
        assert res.stats.total_duplicates_discarded == 1
        assert res.stats.total_retransmits == 0

    def test_delay_is_patience_not_loss(self):
        """A slow message must never trigger a retransmission (the receiver
        can see it is in flight) — retry counts stay simulation-exact."""
        res = run_spmd(
            2, _pair_prog, faults=FaultPlan().delay(src=0, dst=1, delay_s=0.05), transport=QUICK
        )
        _assert_pair_ok(res)
        assert res.stats.total_retransmits == 0

    def test_reordered_messages_delivered_in_sequence(self):
        # Delay only the FIRST message: the second physically arrives first
        # and must wait in the reorder stash.
        res = run_spmd(
            2,
            _pair_prog,
            faults=FaultPlan().delay(src=0, dst=1, index=0, delay_s=0.06),
            transport=QUICK,
        )
        _assert_pair_ok(res)
        assert res.stats.total_retransmits == 0

    def test_collective_survives_drops(self):
        def prog(comm):
            return comm.alltoall([comm.rank * 10 + d for d in range(comm.size)])

        res = run_spmd(
            4, prog, faults=FaultPlan().drop(times=3), transport=QUICK, timeout=30
        )
        for r in range(4):
            assert res[r] == [src * 10 + r for src in range(4)]
        assert res.stats.total_retransmits == 3


class TestTypedFailure:
    def test_permanent_drop_exhausts_retries(self):
        policy = TransportPolicy(retry_timeout=0.01, max_retries=2)
        plan = FaultPlan().drop(src=0, dst=1, times=None)
        with pytest.raises(RankFailure) as info:
            run_spmd(2, _pair_prog, faults=plan, transport=policy, timeout=30)
        assert isinstance(info.value.original, RetryExhaustedError)
        assert info.value.original.attempts == 2

    def test_detect_only_mode_reports_corruption(self):
        policy = TransportPolicy(max_retries=0, retry_timeout=0.01)
        plan = FaultPlan().bitflip(src=0, dst=1)
        with pytest.raises(RankFailure) as info:
            run_spmd(2, _pair_prog, faults=plan, transport=policy, timeout=30)
        err = info.value.original
        assert isinstance(err, CorruptMessageError)
        assert err.reason == "checksum mismatch"

    def test_truncation_caught_without_checksums(self):
        policy = TransportPolicy(checksums=False, max_retries=0, retry_timeout=0.01)
        plan = FaultPlan().truncate(src=0, dst=1)
        with pytest.raises(RankFailure) as info:
            run_spmd(2, _pair_prog, faults=plan, transport=policy, timeout=30)
        err = info.value.original
        assert isinstance(err, CorruptMessageError)
        assert err.reason.startswith("size mismatch")


def _ring_prog(comm):
    """Deterministic multi-phase traffic for the chaos determinism tests."""
    out = []
    with comm.phase("ring"):
        for i in range(3):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            out.append(comm.sendrecv(np.full(8, comm.rank + i, dtype=np.float64),
                                     dest=right, source=left))
    with comm.phase("exchange"):
        out.append(comm.alltoall([np.full(4, comm.rank, dtype=np.float64)] * comm.size))
    return out


def _chaos(seed):
    return ChaosSchedule(
        seed=seed, p_drop=0.1, p_duplicate=0.05, p_delay=0.05, p_truncate=0.05,
        p_bitflip=0.1, delay_s=0.01,
    )


class TestSeedReproducibility:
    def test_same_seed_same_recovery_cost(self):
        runs = [
            run_spmd(4, _ring_prog, faults=_chaos(11), transport=QUICK, timeout=60)
            for _ in range(2)
        ]
        a, b = runs
        assert a.stats.total_retransmits == b.stats.total_retransmits
        assert a.stats.total_retransmit_bytes == b.stats.total_retransmit_bytes
        assert a.stats.total_corrupt_detected == b.stats.total_corrupt_detected
        assert a.stats.total_duplicates_discarded == b.stats.total_duplicates_discarded
        for ra, rb in zip(a.values, b.values):
            for xa, xb in zip(ra, rb):
                np.testing.assert_array_equal(xa, xb)

    def test_same_seed_same_fault_sequence(self):
        logs = []
        for _ in range(2):
            sched = _chaos(11)
            run_spmd(4, _ring_prog, faults=sched, transport=QUICK, timeout=60)
            logs.append(sorted(sched.log))
        assert logs[0] == logs[1]
        assert logs[0]  # the schedule actually injected something

    def test_different_seed_different_fault_sequence(self):
        logs = []
        for seed in (11, 12):
            sched = _chaos(seed)
            run_spmd(4, _ring_prog, faults=sched, transport=QUICK, timeout=60)
            logs.append(sorted(sched.log))
        assert logs[0] != logs[1]

    def test_chaos_output_matches_fault_free(self):
        clean = run_spmd(4, _ring_prog, transport=QUICK, timeout=60)
        noisy = run_spmd(4, _ring_prog, faults=_chaos(11), transport=QUICK, timeout=60)
        for rc, rn in zip(clean.values, noisy.values):
            for xc, xn in zip(rc, rn):
                np.testing.assert_array_equal(xc, xn)
