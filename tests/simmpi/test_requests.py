"""Tests for nonblocking request semantics: isend/irecv, waitall/waitany,
FIFO fulfilment, idempotent claims, and composition with the schedule
fuzzer, the link model, and fault injection over the reliable transport.
"""

import numpy as np
import pytest

from repro.check import ScheduleController
from repro.simmpi import (
    FaultPlan,
    TransportPolicy,
    run_spmd,
    waitall,
    waitany,
)

# Impatient policy: tests exercise retransmission, not wall-clock patience.
QUICK = TransportPolicy(retry_timeout=0.02, max_retries=6)


class TestRequestBasics:
    def test_isend_irecv_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                comm.isend(np.arange(8), dest=1).wait()
                return None
            return comm.irecv(source=0).wait()

        np.testing.assert_array_equal(run_spmd(2, prog)[1], np.arange(8))

    def test_wait_is_idempotent_and_test_caches(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend("x", dest=1)
                first, second = req.wait(), req.wait()
                done, val = req.test()
                return (first, second, done, val)
            req = comm.irecv(source=0)
            a = req.wait()
            b = req.wait()  # double wait: cached value, no re-receive
            done, c = req.test()
            return (a, b, done, c)

        res = run_spmd(2, prog)
        assert res[1] == ("x", "x", True, "x")
        assert res[0] == (None, None, True, None)

    def test_completed_flips_only_at_claim(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(source=1)  # hold the send until the recv is posted
                comm.send("payload", dest=1)
                return None
            req = comm.irecv(source=0)
            posted = req.completed  # nothing sent yet
            comm.send("go", dest=0)
            req.wait()
            return (posted, req.completed)

        assert run_spmd(2, prog)[1] == (False, True)

    def test_out_of_post_order_wait_respects_channel_fifo(self):
        """Waiting on the LAST posted request first still yields the
        third message: fulfilment is per-channel FIFO (non-overtaking)."""

        def prog(comm):
            if comm.rank == 0:
                for i in range(3):
                    comm.send(i, dest=1)
                return None
            reqs = [comm.irecv(source=0) for _ in range(3)]
            last = reqs[2].wait()
            return (last, reqs[0].wait(), reqs[1].wait())

        assert run_spmd(2, prog)[1] == (2, 0, 1)

    def test_waitall_returns_in_request_order(self):
        def prog(comm):
            if comm.rank == 0:
                sends = [comm.isend(i * 10, dest=1, tag=i) for i in range(4)]
                waitall(sends)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in reversed(range(4))]
            return waitall(reqs)

        assert run_spmd(2, prog)[1] == [30, 20, 10, 0]

    def test_send_buffer_reuse_after_wait(self):
        """SendRequest completion means the buffer is consumed: mutating
        it afterwards must not corrupt the delivered payload."""

        def prog(comm):
            if comm.rank == 0:
                buf = np.arange(4, dtype=np.float64)
                req = comm.isend(buf, dest=1)
                comm.recv(source=1)  # receiver confirms it popped the message
                req.wait()
                buf[:] = -1.0
                comm.send("done", dest=1)
                return None
            got = comm.irecv(source=0).wait().copy()
            comm.send("popped", dest=0)
            comm.recv(source=0)
            return got

        np.testing.assert_array_equal(
            run_spmd(2, prog)[1], np.arange(4, dtype=np.float64)
        )


class TestWaitany:
    def test_waitany_returns_arrival_order(self):
        """Token-gated: rank 0 cannot have sent when the first waitany
        runs, so the first completion is deterministically rank 2's."""

        def prog(comm):
            if comm.rank == 1:
                reqs = [comm.irecv(source=0), comm.irecv(source=2)]
                i, first = waitany(reqs)
                comm.send("go", dest=0)
                j, second = waitany(reqs)
                exhausted = waitany(reqs)
                return (i, first, j, second, exhausted)
            if comm.rank == 2:
                comm.send("from2", dest=1)
                return None
            comm.recv(source=1)
            comm.send("from0", dest=1)
            return None

        i, first, j, second, exhausted = run_spmd(3, prog)[1]
        assert (i, first) == (1, "from2")
        assert (j, second) == (0, "from0")
        assert exhausted == (-1, None)  # every request already claimed

    def test_waitany_skips_claimed_requests(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            ra = comm.irecv(source=0, tag=1)
            rb = comm.irecv(source=0, tag=2)
            ra.wait()
            i, val = waitany([ra, rb])
            return (i, val)

        assert run_spmd(2, prog)[1] == (1, "b")


class TestNonblockingCollectives:
    @pytest.mark.parametrize("chunks", [1, 3])
    def test_ialltoall_matches_blocking(self, chunks):
        nranks = 4

        def prog(comm):
            objs = [
                np.arange(6, dtype=np.float64) + 100 * comm.rank + dst
                for dst in range(nranks)
            ]
            got = comm.ialltoall(objs, chunks=chunks).wait()
            ref = comm.alltoall(objs)
            return all(np.array_equal(g, r) for g, r in zip(got, ref))

        assert all(run_spmd(nranks, prog).values)

    def test_ialltoallv_with_holes_matches_blocking(self):
        nranks = 3

        def prog(comm):
            objs = [
                None
                if dst == (comm.rank + 1) % nranks
                else np.full(4, comm.rank * 10 + dst, dtype=np.float64)
                for dst in range(nranks)
            ]
            sources = [
                src for src in range(nranks) if comm.rank != (src + 1) % nranks
            ]
            got = comm.ialltoallv(objs, sources=sources).wait()
            ref = comm.alltoallv(objs, sources=sources)
            return all(
                (g is None and r is None) or np.array_equal(g, r)
                for g, r in zip(got, ref)
            )

        assert all(run_spmd(nranks, prog).values)

    def test_chunked_requires_arrays(self):
        def prog(comm):
            comm.ialltoall(["not-an-array"] * comm.size, chunks=2).wait()

        with pytest.raises(Exception, match="ndarray"):
            run_spmd(2, prog, timeout=5)

    def test_one_alltoall_round_charged(self):
        def prog(comm):
            objs = [np.arange(2, dtype=np.float64) for _ in range(comm.size)]
            comm.ialltoall(objs, chunks=2).wait()

        assert run_spmd(3, prog).stats.alltoall_rounds == 1


class TestScheduleAndFaultComposition:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_channel_fifo_under_fuzzed_schedules(self, seed):
        def prog(comm):
            if comm.rank == 0:
                waitall([comm.isend(i, dest=1) for i in range(10)])
                return None
            return waitall([comm.irecv(source=0) for _ in range(10)])

        res = run_spmd(
            2, prog, schedule=ScheduleController(seed=f"req-fifo/{seed}")
        )
        assert res[1] == list(range(10))

    def test_retransmit_under_drop_fault(self):
        """A dropped isend is recovered by the transport; the receive
        request's wait drives the retransmission machinery."""

        def prog(comm):
            if comm.rank == 0:
                comm.isend(np.arange(4, dtype=np.float64), dest=1).wait()
                return None
            return comm.irecv(source=0).wait()

        res = run_spmd(
            2, prog, faults=FaultPlan().drop(src=0, dst=1), transport=QUICK
        )
        np.testing.assert_array_equal(res[1], np.arange(4, dtype=np.float64))
        assert res.stats.total_retransmits == 1

    def test_transport_out_of_post_order_wait(self):
        def prog(comm):
            if comm.rank == 0:
                waitall([comm.isend(i, dest=1) for i in range(3)])
                return None
            reqs = [comm.irecv(source=0) for _ in range(3)]
            return (reqs[2].wait(), reqs[0].wait(), reqs[1].wait())

        res = run_spmd(2, prog, transport=QUICK)
        assert res[1] == (2, 0, 1)


class TestLinkModel:
    def test_link_preserves_channel_fifo(self):
        def prog(comm):
            if comm.rank == 0:
                waitall([comm.isend(i, dest=1) for i in range(8)])
                return None
            return waitall([comm.irecv(source=0) for _ in range(8)])

        res = run_spmd(2, prog, link_latency=1e-4, link_bandwidth=1e6)
        assert res[1] == list(range(8))

    def test_link_blocking_collectives_unchanged(self):
        def prog(comm):
            objs = [np.arange(3, dtype=np.float64) + dst for dst in range(comm.size)]
            got = comm.alltoall(objs)
            comm.barrier()
            return [g.sum() for g in got]

        plain = run_spmd(3, prog)
        linked = run_spmd(3, prog, link_latency=5e-5, link_bandwidth=2e6)
        assert plain.values == linked.values


class TestDepthAccounting:
    def test_depth_histogram_records_posts_and_claims(self):
        def prog(comm):
            if comm.rank == 0:
                waitall([comm.isend(i, dest=1) for i in range(3)])
                return None
            waitall([comm.irecv(source=0) for _ in range(3)])
            return None

        stats = run_spmd(2, prog).stats
        ph = stats.phase("default")
        assert ph.max_outstanding == 3
        # 2 ranks x (3 posts + 3 claims) = 12 depth transitions.
        assert sum(ph.time_at_depth.values()) == 12

    def test_depth_histogram_schedule_invariant(self):
        """Claims are recorded at program observation points, so the
        depth profile must not depend on the fuzzed arrival order."""

        def prog(comm):
            nxt, prv = (comm.rank + 1) % comm.size, (comm.rank - 1) % comm.size
            sends = [comm.isend(i, dest=nxt) for i in range(4)]
            recvs = [comm.irecv(source=prv) for _ in range(4)]
            got = waitall(recvs)
            waitall(sends)
            return got

        ref = run_spmd(3, prog)
        ref_phase = ref.stats.phase("default").as_dict()
        for seed in range(3):
            res = run_spmd(
                3, prog, schedule=ScheduleController(seed=f"depth/{seed}")
            )
            assert res.values == ref.values
            assert res.stats.phase("default").as_dict() == ref_phase
