"""Tests for the substrate's failure semantics: deadlock detection, root-cause
selection, barrier unwinding, phase-boundary kills and bounded restart."""

import time

import pytest

from repro.simmpi import (
    DeadlockError,
    FaultPlan,
    InjectedFault,
    RankFailure,
    run_spmd,
)


class TestDeadlockDetection:
    def test_missing_send_is_deadlock_on_the_receiver(self):
        def prog(comm):
            if comm.rank == 1:
                comm.recv(source=0)  # rank 0 never sends

        with pytest.raises(RankFailure) as info:
            run_spmd(2, prog, timeout=0.3)
        assert info.value.rank == 1
        assert isinstance(info.value.original, DeadlockError)

    def test_mismatched_tags_deadlock(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=1)
            else:
                comm.recv(source=0, tag=2)

        with pytest.raises(RankFailure) as info:
            run_spmd(2, prog, timeout=0.3)
        assert isinstance(info.value.original, DeadlockError)

    def test_deadlock_message_names_the_channel(self):
        def prog(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=7)

        with pytest.raises(RankFailure) as info:
            run_spmd(2, prog, timeout=0.3)
        assert "rank 1" in str(info.value.original)
        assert "tag=7" in str(info.value.original)


class TestRootCauseSelection:
    def test_injected_fault_beats_lower_ranked_secondary_aborts(self):
        """Ranks 0 and 1 die of the abort (plain SimMpiError); the report
        must name rank 2's InjectedFault, not the lowest-ranked casualty."""

        def prog(comm):
            if comm.rank == 2:
                raise InjectedFault("nic on fire")
            comm.recv(source=2)

        with pytest.raises(RankFailure) as info:
            run_spmd(3, prog, timeout=10)
        assert info.value.rank == 2
        assert isinstance(info.value.original, InjectedFault)

    def test_user_exception_beats_secondary_aborts(self):
        def prog(comm):
            if comm.rank == 3:
                raise ZeroDivisionError("root cause")
            comm.barrier()

        with pytest.raises(RankFailure) as info:
            run_spmd(4, prog, timeout=10)
        assert info.value.rank == 3
        assert isinstance(info.value.original, ZeroDivisionError)


class TestBarrierUnwinding:
    def test_blocked_barrier_unwinds_promptly_on_failure(self):
        start = time.monotonic()

        def prog(comm):
            if comm.rank == 0:
                raise ValueError("dead")
            comm.barrier()

        with pytest.raises(RankFailure) as info:
            run_spmd(3, prog, timeout=60)
        assert time.monotonic() - start < 10  # nobody waited out the timeout
        assert isinstance(info.value.original, ValueError)

    def test_blocked_recv_unwinds_promptly_on_failure(self):
        start = time.monotonic()

        def prog(comm):
            if comm.rank == 0:
                raise ValueError("dead")
            comm.recv(source=0)

        with pytest.raises(RankFailure):
            run_spmd(3, prog, timeout=60)
        assert time.monotonic() - start < 10


def _phase_prog(comm):
    with comm.phase("work"):
        return comm.allreduce(comm.rank)


class TestKillAndRestart:
    def test_kill_fires_at_phase_boundary(self):
        plan = FaultPlan().kill(1, phase="work")
        with pytest.raises(RankFailure) as info:
            run_spmd(3, _phase_prog, faults=plan, timeout=10)
        assert info.value.rank == 1
        assert isinstance(info.value.original, InjectedFault)
        assert "phase 'work'" in str(info.value.original)

    def test_kill_only_named_phase(self):
        plan = FaultPlan().kill(1, phase="other-phase")
        res = run_spmd(3, _phase_prog, faults=plan, timeout=10)
        assert res.values == [3, 3, 3]

    def test_one_shot_kill_recovered_by_restart(self):
        plan = FaultPlan().kill(1, phase="work")
        res = run_spmd(3, _phase_prog, faults=plan, max_restarts=1, timeout=10)
        assert res.restarts == 1
        assert res.values == [3, 3, 3]

    def test_repeated_kill_exhausts_restart_budget(self):
        plan = FaultPlan().kill(1, phase="work", times=3)
        with pytest.raises(RankFailure) as info:
            run_spmd(3, _phase_prog, faults=plan, max_restarts=1, timeout=10)
        assert isinstance(info.value.original, InjectedFault)

    def test_restart_budget_unused_on_clean_run(self):
        res = run_spmd(3, _phase_prog, max_restarts=5, timeout=10)
        assert res.restarts == 0

    def test_non_injected_failures_not_restarted_by_default(self):
        calls = []

        def prog(comm):
            if comm.rank == 0:
                calls.append(1)
                raise ValueError("real bug")
            comm.barrier()

        with pytest.raises(RankFailure):
            run_spmd(2, prog, max_restarts=3, timeout=10)
        assert len(calls) == 1  # a genuine bug must not be retried into passing

    def test_custom_restartable_predicate(self):
        state = {"failed": False}

        def prog(comm):
            if comm.rank == 0 and not state["failed"]:
                state["failed"] = True
                raise ValueError("transient")
            comm.barrier()
            return comm.rank

        res = run_spmd(
            2,
            prog,
            max_restarts=1,
            restartable=lambda e: isinstance(e, ValueError),
            timeout=10,
        )
        assert res.restarts == 1
        assert res.values == [0, 1]
