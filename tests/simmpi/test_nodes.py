"""Tests for node topology: :class:`NodeMap`, the zero-copy
:class:`NodeSharedPool`, the link-pump bypass for same-node traffic,
and the topology-aware intra/inter split in :class:`TrafficStats`."""

import numpy as np
import pytest

from repro.simmpi import (
    FABRIC_HEADER_BYTES,
    NodeMap,
    NodeSharedPool,
    run_spmd,
)
from repro.simmpi.stats import TrafficStats


class TestNodeMap:
    def test_flat_default_every_rank_its_own_node(self):
        nm = NodeMap(4)
        assert nm.flat
        assert nm.nnodes == 4
        assert nm.same_node(2, 2)
        assert not nm.same_node(0, 1)

    def test_contiguous_blocks(self):
        nm = NodeMap(8, 4)
        assert not nm.flat
        assert nm.nnodes == 2
        assert nm.node_of(3) == 0
        assert nm.node_of(4) == 1
        assert nm.ranks_on(1) == (4, 5, 6, 7)
        assert nm.leader_of(1) == 4
        assert nm.same_node(4, 7)
        assert not nm.same_node(3, 4)

    def test_ragged_tail_node(self):
        nm = NodeMap(8, 3)
        assert nm.nnodes == 3
        assert nm.ranks_on(2) == (6, 7)
        assert nm.leader_of(2) == 6

    def test_ranks_per_node_clamped_to_world_size(self):
        nm = NodeMap(2, 16)
        assert nm.nnodes == 1
        assert nm.ranks_on(0) == (0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeMap(0)
        with pytest.raises(ValueError):
            NodeMap(4, 0)
        with pytest.raises(ValueError):
            NodeMap(4, 2).node_of(4)
        with pytest.raises(ValueError):
            NodeMap(4, 2).ranks_on(2)

    def test_as_dict(self):
        assert NodeMap(8, 4).as_dict() == {
            "nranks": 8,
            "ranks_per_node": 4,
            "nnodes": 2,
        }


class TestNodeSharedPool:
    def test_stage_returns_zero_copy_view(self):
        pool = NodeSharedPool(NodeMap(4, 2))
        arr = np.arange(8.0)
        got = pool.stage(0, 1, arr)
        assert got is not arr
        assert np.shares_memory(got, arr)
        np.testing.assert_array_equal(got, arr)
        assert pool.transfers(0) == 1
        assert pool.bytes_staged(0) == arr.nbytes

    def test_self_send_and_non_ndarray_pass_through_unmetered(self):
        pool = NodeSharedPool(NodeMap(4, 2))
        arr = np.arange(4.0)
        assert pool.stage(1, 1, arr) is arr
        obj = {"k": 1}
        assert pool.stage(0, 1, obj) is obj
        assert pool.transfers() == 0
        assert pool.bytes_staged() == 0

    def test_per_node_counters(self):
        pool = NodeSharedPool(NodeMap(4, 2))
        pool.stage(0, 1, np.zeros(2))
        pool.stage(2, 3, np.zeros(4))
        assert pool.transfers(0) == 1
        assert pool.transfers(1) == 1
        assert pool.bytes_staged(1) == 32
        assert pool.as_dict() == {
            "transfers": {0: 1, 1: 1},
            "bytes": {0: 16, 1: 32},
        }

    def test_live_registry_does_not_extend_payload_lifetime(self):
        pool = NodeSharedPool(NodeMap(2, 2))
        arr = np.arange(16.0)
        pool.stage(0, 1, arr)
        assert pool.live_buffers(0) == 1
        del arr
        assert pool.live_buffers(0) == 0


class TestSameNodeTransferPath:
    def test_same_node_recv_shares_the_senders_buffer(self):
        def body(comm):
            if comm.rank == 0:
                arr = np.arange(32.0)
                comm.send(arr, dest=1)
                return arr
            return comm.recv(source=0)

        res = run_spmd(2, body, ranks_per_node=2)
        assert np.shares_memory(res.values[0], res.values[1])

    def test_cross_node_recv_does_not_share_memory_under_link(self):
        # With a link model the pump serialises cross-node messages;
        # either way the payload must arrive intact.
        def body(comm):
            if comm.rank == 0:
                comm.send(np.arange(32.0), dest=1)
                return None
            return comm.recv(source=0)

        res = run_spmd(2, body, ranks_per_node=1)
        np.testing.assert_array_equal(res.values[1], np.arange(32.0))

    def test_same_node_bytes_are_intra_node_not_fabric(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), dest=1)  # 80 payload bytes
            else:
                comm.recv(source=0)

        res = run_spmd(2, body, ranks_per_node=2)
        assert res.stats.total_intra_node_bytes == 80
        assert res.stats.total_inter_node_bytes == 0
        assert res.stats.total_inter_node_messages == 0

    def test_cross_node_bytes_charged_with_fabric_header(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), dest=1)
            else:
                comm.recv(source=0)

        res = run_spmd(2, body, ranks_per_node=1)
        assert res.stats.total_intra_node_bytes == 0
        assert res.stats.total_inter_node_bytes == 80 + FABRIC_HEADER_BYTES
        assert res.stats.total_inter_node_messages == 1
        # The header is a counter-only charge: payload accounting is
        # unchanged from the flat world.
        assert res.stats.phase("default").bytes_by_pair[(0, 1)] == 80

    def test_same_node_bypass_works_under_link_model(self):
        # Same-node messages must not wait behind the pump's modelled
        # wire time even when a (slow) link model is configured.
        def body(comm):
            if comm.rank == 0:
                comm.send(np.arange(64.0), dest=1)
                return None
            return comm.recv(source=0)

        res = run_spmd(
            2, body, ranks_per_node=2,
            link_bandwidth=1e6, link_latency=1e-3,
        )
        np.testing.assert_array_equal(res.values[1], np.arange(64.0))
        assert res.stats.total_inter_node_bytes == 0


class TestStatsTopologyRoundTrip:
    def test_as_dict_from_dict_preserves_node_counters(self):
        def body(comm):
            objs = [np.full(8, comm.rank, dtype=np.complex128) for _ in range(4)]
            comm.alltoall(objs)

        res = run_spmd(4, body, ranks_per_node=2)
        st = res.stats
        assert st.total_intra_node_bytes > 0
        assert st.total_inter_node_bytes > 0
        clone = TrafficStats.from_dict(st.as_dict())
        assert clone.total_intra_node_bytes == st.total_intra_node_bytes
        assert clone.total_inter_node_bytes == st.total_inter_node_bytes
        assert clone.total_inter_node_messages == st.total_inter_node_messages
        ph, ph2 = st.phase("default"), clone.phase("default")
        assert ph2.intra_node_bytes == ph.intra_node_bytes
        assert ph2.inter_node_bytes == ph.inter_node_bytes
        assert ph2.inter_node_messages == ph.inter_node_messages

    def test_nonblocking_path_attributes_same_node_consistently(self):
        # isend/irecv between same-node ranks must charge intra-node
        # bytes exactly like the blocking path.
        def blocking(comm):
            if comm.rank == 0:
                comm.send(np.zeros(16), dest=1)
            else:
                comm.recv(source=0)

        def nonblocking(comm):
            if comm.rank == 0:
                comm.isend(np.zeros(16), dest=1).wait()
            else:
                comm.irecv(source=0).wait()

        a = run_spmd(2, blocking, ranks_per_node=2).stats
        b = run_spmd(2, nonblocking, ranks_per_node=2).stats
        assert (
            b.total_intra_node_bytes == a.total_intra_node_bytes == 128
        )
        assert b.total_inter_node_bytes == a.total_inter_node_bytes == 0
