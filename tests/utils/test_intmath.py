"""Tests for repro.utils.intmath."""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.utils import (
    as_fraction,
    bit_reverse_indices,
    factorize,
    gcd_reduce,
    is_power_of_two,
    largest_power_of_two_divisor,
    next_power_of_two,
)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 1 << 30])
    def test_true_cases(self, n):
        assert is_power_of_two(n)

    @pytest.mark.parametrize("n", [0, -2, 3, 6, 7, 12, (1 << 30) - 1])
    def test_false_cases(self, n):
        assert not is_power_of_two(n)


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 4), (5, 8), (1000, 1024), (1024, 1024)]
    )
    def test_values(self, n, expected):
        assert next_power_of_two(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestLargestPowerOfTwoDivisor:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (12, 4), (40, 8), (7, 1), (96, 32)]
    )
    def test_values(self, n, expected):
        assert largest_power_of_two_divisor(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            largest_power_of_two_divisor(-8)


class TestBitReverseIndices:
    def test_small_cases(self):
        np.testing.assert_array_equal(bit_reverse_indices(1), [0])
        np.testing.assert_array_equal(bit_reverse_indices(2), [0, 1])
        np.testing.assert_array_equal(bit_reverse_indices(4), [0, 2, 1, 3])
        np.testing.assert_array_equal(bit_reverse_indices(8), [0, 4, 2, 6, 1, 5, 3, 7])

    @pytest.mark.parametrize("n", [16, 64, 256, 1024])
    def test_is_an_involution(self, n):
        rev = bit_reverse_indices(n)
        np.testing.assert_array_equal(rev[rev], np.arange(n))

    @pytest.mark.parametrize("n", [16, 128])
    def test_matches_per_element_bit_reversal(self, n):
        bits = n.bit_length() - 1
        expected = [int(format(i, f"0{bits}b")[::-1], 2) for i in range(n)]
        np.testing.assert_array_equal(bit_reverse_indices(n), expected)

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            bit_reverse_indices(12)


class TestFactorize:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (1, []),
            (2, [2]),
            (12, [2, 2, 3]),
            (97, [97]),
            (1280, [2] * 8 + [5]),
            (3 * 5 * 7 * 11, [3, 5, 7, 11]),
            (101 * 103, [101, 103]),
        ],
    )
    def test_known_factorizations(self, n, expected):
        assert factorize(n) == expected

    @pytest.mark.parametrize("n", [2, 36, 100, 97, 4096, 9699690])
    def test_product_reconstructs(self, n):
        assert math.prod(factorize(n)) == n

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factorize(0)


class TestGcdReduce:
    def test_reduces(self):
        assert gcd_reduce(10, 8) == (5, 4)

    def test_already_reduced(self):
        assert gcd_reduce(5, 4) == (5, 4)

    def test_normalises_sign(self):
        assert gcd_reduce(5, -4) == (-5, 4)

    def test_zero_denominator(self):
        with pytest.raises(ZeroDivisionError):
            gcd_reduce(1, 0)


class TestAsFraction:
    def test_quarter(self):
        assert as_fraction(0.25) == Fraction(1, 4)

    def test_fraction_passthrough(self):
        assert as_fraction(Fraction(3, 8)) == Fraction(3, 8)

    def test_half(self):
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_rejects_irrational_like(self):
        with pytest.raises(ValueError, match="rational"):
            as_fraction(math.pi / 10)

    def test_respects_max_denominator(self):
        with pytest.raises(ValueError):
            as_fraction(1.0 / 129.0, max_denominator=64)
