"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils import (
    as_complex_vector,
    check_positive_int,
    check_power_of_two,
    require,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_value_error_by_default(self):
        with pytest.raises(ValueError, match="bad thing"):
            require(False, "bad thing")

    def test_raises_custom_exception(self):
        with pytest.raises(TypeError, match="wrong type"):
            require(False, "wrong type", exc=TypeError)


class TestCheckPositiveInt:
    def test_accepts_python_int(self):
        assert check_positive_int(7, "x") == 7

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(12), "x") == 12

    def test_returns_builtin_int(self):
        assert type(check_positive_int(np.int32(3), "x")) is int

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="must be positive"):
            check_positive_int(0, "n")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="must be positive"):
            check_positive_int(-4, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError, match="bool"):
            check_positive_int(True, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError, match="integer"):
            check_positive_int(2.0, "n")

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="segments"):
            check_positive_int(-1, "segments")


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 1024, 1 << 20])
    def test_accepts_powers(self, n):
        assert check_power_of_two(n, "x") == n

    @pytest.mark.parametrize("n", [3, 5, 6, 12, 100, 1023])
    def test_rejects_non_powers(self, n):
        with pytest.raises(ValueError, match="power of two"):
            check_power_of_two(n, "x")

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            check_power_of_two(0, "x")


class TestAsComplexVector:
    def test_promotes_real_input(self):
        out = as_complex_vector(np.array([1.0, 2.0]))
        assert out.dtype == np.complex128
        np.testing.assert_array_equal(out, [1 + 0j, 2 + 0j])

    def test_accepts_lists(self):
        out = as_complex_vector([1, 2, 3])
        assert out.shape == (3,)

    def test_preserves_complex_values(self):
        x = np.array([1 + 2j, -3j])
        np.testing.assert_array_equal(as_complex_vector(x), x)

    def test_output_is_contiguous(self):
        x = np.arange(10, dtype=np.complex128)[::2]
        assert as_complex_vector(x).flags.c_contiguous

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            as_complex_vector(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            as_complex_vector(np.array([]))

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="numeric"):
            as_complex_vector(np.array(["a", "b"]))

    def test_names_argument_in_error(self):
        with pytest.raises(ValueError, match="signal"):
            as_complex_vector(np.zeros((2, 2)), name="signal")
