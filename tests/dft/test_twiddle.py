"""Tests for twiddle caching."""

import numpy as np
import pytest

from repro.dft.twiddle import clear_twiddle_cache, twiddle_cache_info, twiddles


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_twiddle_cache()
    yield
    clear_twiddle_cache()


class TestTwiddles:
    def test_forward_values(self):
        w = twiddles(4, -1)
        np.testing.assert_allclose(w, [1, -1j, -1, 1j], atol=1e-15)

    def test_inverse_is_conjugate(self):
        np.testing.assert_allclose(twiddles(12, 1), np.conj(twiddles(12, -1)), atol=1e-15)

    def test_unit_modulus(self):
        np.testing.assert_allclose(np.abs(twiddles(37, -1)), 1.0, atol=1e-15)

    def test_cache_hit_returns_same_object(self):
        a = twiddles(64, -1)
        b = twiddles(64, -1)
        assert a is b

    def test_readonly(self):
        w = twiddles(8, -1)
        with pytest.raises(ValueError):
            w[0] = 0

    def test_sign_validation(self):
        with pytest.raises(ValueError):
            twiddles(8, 2)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            twiddles(0, -1)


class TestCacheBehaviour:
    def test_hit_miss_counters(self):
        twiddles(16, -1)
        twiddles(16, -1)
        twiddles(32, -1)
        info = twiddle_cache_info()
        assert info["misses"] == 2
        assert info["hits"] == 1
        assert info["entries"] == 2

    def test_clear_resets(self):
        twiddles(16, -1)
        clear_twiddle_cache()
        assert twiddle_cache_info() == {"entries": 0, "hits": 0, "misses": 0}

    def test_lru_eviction_bounds_entries(self):
        for n in range(2, 300):
            twiddles(n, -1)
        assert twiddle_cache_info()["entries"] <= 256
