"""Tests for flop accounting (the paper's GFLOPS metric)."""

import math

import pytest

from repro.dft.flops import (
    fft_flops,
    fft_gflops_rate,
    soi_convolution_flops,
    soi_total_flops,
)


class TestFftFlops:
    def test_formula(self):
        assert fft_flops(1024) == 5 * 1024 * 10

    def test_length_one_is_zero(self):
        assert fft_flops(1) == 0.0

    def test_monotone(self):
        assert fft_flops(2048) > fft_flops(1024)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fft_flops(0)


class TestGflopsRate:
    def test_paper_metric(self):
        # 2^20 points in 1 ms
        n = 1 << 20
        rate = fft_gflops_rate(n, 1e-3)
        assert rate == pytest.approx(5 * n * 20 / 1e-3 / 1e9)

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            fft_gflops_rate(8, 0.0)


class TestSoiFlops:
    def test_convolution_formula(self):
        assert soi_convolution_flops(1000, 72) == 8.0 * 1000 * 72

    def test_total_combines_terms(self):
        n, beta, b = 1 << 20, 0.25, 72
        n_over = int(n * 1.25)
        expected = fft_flops(n_over) + soi_convolution_flops(n_over, b)
        assert soi_total_flops(n, beta, b) == expected

    def test_paper_ratio_conv_to_fft_about_four(self):
        """Section 7.4: at 2^28 points and B=72, convolution arithmetic is
        'almost fourfold that of a regular FFT'."""
        n = 1 << 28
        n_over = int(n * 1.25)
        ratio = soi_convolution_flops(n_over, 72) / fft_flops(n_over)
        assert 3.5 < ratio < 4.5

    def test_soi_about_fivefold_total(self):
        """Section 7.4: 'SOI is about fivefold as expensive in terms of
        arithmetic operations count' (vs the regular FFT)."""
        n = 1 << 28
        ratio = soi_total_flops(n, 0.25, 72) / fft_flops(n)
        assert 4.5 < ratio < 6.5

    def test_validation(self):
        with pytest.raises(ValueError):
            soi_convolution_flops(0, 72)
        with pytest.raises(ValueError):
            soi_convolution_flops(100, 0)
