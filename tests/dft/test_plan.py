"""Tests for FftPlan dispatch, caching and accounting."""

import numpy as np
import pytest

from repro.dft import FftPlan, fft, ifft
from repro.dft.flops import fft_flops


class TestKernelDispatch:
    def test_power_of_two_uses_radix2(self):
        assert FftPlan(1024).kernel == "radix2"

    def test_length_one_uses_radix2(self):
        assert FftPlan(1).kernel == "radix2"

    def test_smooth_composite_uses_mixed_radix(self):
        assert FftPlan(1280).kernel == "mixed_radix"  # 2^8 * 5

    def test_large_prime_uses_bluestein(self):
        assert FftPlan(10007).kernel == "bluestein"

    def test_composite_with_large_prime_uses_bluestein(self):
        # 4 * 9973: the large prime factor forces the chirp-z path.
        assert FftPlan(4 * 9973).kernel == "bluestein"


class TestExecution:
    @pytest.mark.parametrize("n", [8, 60, 97, 1280])
    def test_forward_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(FftPlan(n).execute(x), np.fft.fft(x), atol=1e-9 * n)

    @pytest.mark.parametrize("n", [8, 60, 97])
    def test_inverse_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(
            FftPlan(n).execute(x, inverse=True), np.fft.ifft(x), atol=1e-11
        )

    def test_default_direction_from_constructor(self, rng):
        x = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        plan = FftPlan(16, inverse=True)
        np.testing.assert_allclose(plan.execute(x), np.fft.ifft(x), atol=1e-12)

    def test_per_call_override_wins(self, rng):
        x = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        plan = FftPlan(16, inverse=True)
        np.testing.assert_allclose(plan.execute(x, inverse=False), np.fft.fft(x), atol=1e-11)

    def test_callable_shorthand(self, rng):
        x = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        plan = FftPlan(8)
        np.testing.assert_array_equal(plan(x), plan.execute(x))

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="length 16"):
            FftPlan(16).execute(np.zeros(8))

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            FftPlan(0)


class TestAccounting:
    def test_execution_counter(self, rng):
        plan = FftPlan(8)
        plan.execute(rng.standard_normal(8))
        plan.execute(rng.standard_normal((3, 8)))
        assert plan.executions == 4  # 1 + 3 batch rows

    def test_flops_per_execution(self):
        assert FftPlan(1024).flops_per_execution == fft_flops(1024)


class TestOneShotHelpers:
    def test_fft_helper(self, rng):
        x = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-10)

    def test_ifft_helper(self, rng):
        x = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        np.testing.assert_allclose(ifft(x), np.fft.ifft(x), atol=1e-12)

    def test_roundtrip(self, rng):
        x = rng.standard_normal(31) + 1j * rng.standard_normal(31)
        np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-10)
