"""Tests for the real-input FFT (packed half-length algorithm)."""

import numpy as np
import pytest

from repro.dft import irfft, rfft


class TestRfft:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 100, 128, 1000, 1280])
    def test_matches_numpy(self, n, rng):
        x = rng.standard_normal(n)
        np.testing.assert_allclose(rfft(x), np.fft.rfft(x), atol=1e-9 * n)

    def test_output_length(self):
        assert rfft(np.ones(16)).shape == (9,)

    def test_dc_and_nyquist_are_real(self, rng):
        y = rfft(rng.standard_normal(32))
        assert abs(y[0].imag) < 1e-12
        assert abs(y[-1].imag) < 1e-12

    def test_batched(self, rng):
        x = rng.standard_normal((3, 64))
        np.testing.assert_allclose(rfft(x), np.fft.rfft(x, axis=-1), atol=1e-9)

    def test_rejects_complex(self):
        with pytest.raises(TypeError, match="real"):
            rfft(np.zeros(8, dtype=complex))

    @pytest.mark.parametrize("n", [3, 9, 15, 27, 101, 255])
    def test_odd_lengths_match_numpy(self, n, rng):
        x = rng.standard_normal(n)
        np.testing.assert_allclose(rfft(x), np.fft.rfft(x), atol=1e-9 * n)

    def test_odd_length_batched(self, rng):
        x = rng.standard_normal((3, 45))
        np.testing.assert_allclose(rfft(x), np.fft.rfft(x, axis=-1), atol=1e-9)

    def test_cosine_line(self):
        n, f = 64, 5
        x = np.cos(2 * np.pi * f * np.arange(n) / n)
        y = rfft(x)
        assert abs(y[f] - n / 2) < 1e-9


class TestIrfft:
    @pytest.mark.parametrize("n", [2, 8, 64, 100, 1000])
    def test_roundtrip(self, n, rng):
        x = rng.standard_normal(n)
        np.testing.assert_allclose(irfft(rfft(x)), x, atol=1e-10)

    def test_matches_numpy(self, rng):
        spec = np.fft.rfft(rng.standard_normal(64))
        np.testing.assert_allclose(irfft(spec), np.fft.irfft(spec), atol=1e-11)

    def test_explicit_n(self, rng):
        x = rng.standard_normal(32)
        np.testing.assert_allclose(irfft(rfft(x), n=32), x, atol=1e-10)

    def test_inconsistent_n_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            irfft(np.zeros(9, dtype=complex), n=10)

    def test_too_few_bins_rejected(self):
        with pytest.raises(ValueError):
            irfft(np.zeros(1, dtype=complex))

    def test_output_is_real_dtype(self, rng):
        assert irfft(rfft(rng.standard_normal(16))).dtype == np.float64
