"""Tests for the autotuner: candidate racing, wisdom store, plan dispatch.

The tuner's two contracts are (1) *safety* — every candidate schedule
is bitwise-identical to the default radix-2 kernel, so racing can never
change a result — and (2) *robustness* — the persisted wisdom file
degrades gracefully: corrupt, stale-schema, missing, or foreign-host
files all fall back to "no wisdom" without raising, leaving the
in-memory store untouched.
"""

import json

import numpy as np
import pytest

from repro.dft import plan_for, tune
from repro.dft.cache import clear_plan_cache
from repro.dft.stockham import stockham_fft, stockham_fft_t


@pytest.fixture(autouse=True)
def fresh_wisdom():
    """Isolate every test from ambient wisdom and warm plans."""
    tune.clear_wisdom()
    clear_plan_cache()
    yield
    tune.clear_wisdom()
    clear_plan_cache()


@pytest.fixture
def rng():
    return np.random.default_rng(0xD1CE)


class TestCandidates:
    def test_default_config_first(self):
        for n, nb in [(256, 1), (1024, 16), (4096, 4)]:
            configs = tune.candidate_configs(n, nb)
            assert configs[0] == tune.DEFAULT_CONFIG

    def test_no_behavioural_duplicates(self):
        from repro.dft.tune import _effective_signature

        for n, nb in [(256, 1), (1024, 16), (65536, 4)]:
            configs = tune.candidate_configs(n, nb)
            sigs = [_effective_signature(n, nb, c) for c in configs]
            assert len(sigs) == len(set(sigs))

    def test_batch_bucket_rounds_up_to_power_of_two(self):
        assert tune.batch_bucket(1) == 1
        assert tune.batch_bucket(2) == 2
        assert tune.batch_bucket(5) == 8
        assert tune.batch_bucket(16) == 16
        assert tune.batch_bucket(17) == 32

    def test_non_power_of_two_size_rejected(self):
        with pytest.raises(ValueError, match="power-of-two"):
            tune.race_shape(360)


class TestSchedulesBitwise:
    """Safety contract: every tunable moves data, never values."""

    @pytest.mark.parametrize("variant", ["radix4", "split_radix"])
    @pytest.mark.parametrize("shape", [(512,), (8, 256), (3, 1024)])
    def test_variants_match_radix2(self, variant, shape, rng):
        x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        for sign in (-1, +1):
            assert np.array_equal(
                stockham_fft(x, sign, variant=variant), stockham_fft(x, sign)
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"group_elements": 0},
            {"group_elements": 1024},
            {"tile_elements": 0},
            {"tile_elements": 1 << 19},
            {"variant": "radix4", "group_elements": 0, "tile_elements": 1 << 19},
        ],
    )
    def test_tunables_match_default(self, kwargs, rng):
        x = rng.standard_normal((16, 512)) + 1j * rng.standard_normal((16, 512))
        assert np.array_equal(stockham_fft(x, -1, **kwargs), stockham_fft(x, -1))
        assert np.array_equal(
            stockham_fft_t(x, -1, **kwargs), stockham_fft_t(x, -1)
        )


class TestRacing:
    def test_race_shape_reports_all_candidates(self):
        res = tune.race_shape(256, nb=4, reps=1, burst=1)
        assert res["n"] == 256 and res["nb"] == 4 and res["bucket"] == 4
        assert len(res["candidates"]) >= 3
        assert res["speedup"] >= 1.0  # winner is never slower than default
        assert tune._valid_config(res["config"])

    def test_tune_shape_records_wisdom(self):
        tune.tune_shape(256, nb=4, reps=1)
        entries = tune.wisdom_entries()
        assert (256, "complex128", 4) in entries
        info = tune.wisdom_info()
        assert info["entries"] == 1
        assert info["races_run"] == 1

    def test_hysteresis_keeps_default_on_narrow_wins(self, monkeypatch):
        # Force all candidates to identical times: nothing beats the
        # default by the hysteresis margin, so the default must win.
        monkeypatch.setattr(tune.time, "perf_counter_ns", lambda: 0)
        res = tune.race_shape(256, nb=4, reps=1, burst=1)
        assert res["config"] == tune.DEFAULT_CONFIG

    def test_autotune_accepts_bare_and_tuple_shapes(self):
        results = tune.autotune([256, (512, 2)], reps=1)
        assert [(r["n"], r["nb"]) for r in results] == [(256, 1), (512, 2)]
        assert tune.wisdom_info()["entries"] == 2


class TestWisdomStore:
    def test_record_and_lookup_by_bucket(self):
        cfg = {"variant": "radix4", "group_elements": 0, "tile_elements": None}
        tune.record_wisdom(512, np.complex128, 8, cfg)
        # Any nb in the bucket (5..8 -> 8) resolves to the entry.
        assert tune.tuned_config_for(512, np.complex128, 5) == cfg
        assert tune.tuned_config_for(512, np.complex128, 8) == cfg
        # Other buckets and dtypes miss.
        assert tune.tuned_config_for(512, np.complex128, 16) is None
        assert tune.tuned_config_for(512, np.complex64, 8) is None
        info = tune.wisdom_info()
        assert info["wisdom_hits"] == 2 and info["wisdom_misses"] == 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="invalid kernel config"):
            tune.record_wisdom(512, np.complex128, 1, {"variant": "radix8"})
        with pytest.raises(ValueError, match="invalid kernel config"):
            tune.record_wisdom(
                512, np.complex128, 1,
                {"variant": "radix2", "group_elements": -3, "tile_elements": None},
            )

    def test_generation_bumps_on_every_mutation(self):
        g0 = tune.wisdom_generation()
        tune.record_wisdom(512, np.complex128, 1, dict(tune.DEFAULT_CONFIG))
        g1 = tune.wisdom_generation()
        assert g1 > g0
        tune.clear_wisdom()
        assert tune.wisdom_generation() > g1


class TestPlanDispatch:
    def test_tuned_plan_is_bitwise_default(self, rng):
        x = rng.standard_normal((8, 1024)) + 1j * rng.standard_normal((8, 1024))
        reference = stockham_fft(x, -1)
        for variant in ("radix4", "split_radix"):
            tune.record_wisdom(
                1024, np.complex128, 8,
                {"variant": variant, "group_elements": 0,
                 "tile_elements": 1 << 19},
            )
            assert np.array_equal(plan_for(1024).execute(x), reference)

    def test_dispatch_revalidates_on_generation_change(self, rng):
        x = rng.standard_normal((4, 512)) + 1j * rng.standard_normal((4, 512))
        plan = plan_for(512)
        assert plan._tuned_config(4) is None
        cfg = {"variant": "radix4", "group_elements": None, "tile_elements": None}
        tune.record_wisdom(512, np.complex128, 4, cfg)
        assert plan._tuned_config(4) == cfg
        assert np.array_equal(plan.execute(x), stockham_fft(x, -1))
        tune.clear_wisdom()
        assert plan._tuned_config(4) is None


class TestPersistence:
    """Satellite: the wisdom file degrades gracefully, never raises."""

    def _seed_entries(self):
        tune.record_wisdom(
            512, np.complex128, 4,
            {"variant": "radix4", "group_elements": 0, "tile_elements": None},
            us=10.0, baseline_us=12.0,
        )
        tune.record_wisdom(
            4096, np.complex128, 1,
            {"variant": "radix2", "group_elements": None,
             "tile_elements": 1 << 19},
        )

    def test_round_trip(self, tmp_path):
        self._seed_entries()
        before = tune.wisdom_entries()
        path = tmp_path / "wisdom.json"
        assert tune.save_wisdom(str(path)) == 2
        tune.clear_wisdom()
        status = tune.load_wisdom(str(path))
        assert status["status"] == "ok" and status["loaded"] == 2
        after = tune.wisdom_entries()
        assert set(after) == set(before)
        for key in before:
            for field in ("variant", "group_elements", "tile_elements"):
                assert after[key][field] == before[key][field]

    def test_missing_file(self, tmp_path):
        self._seed_entries()
        status = tune.load_wisdom(str(tmp_path / "nope.json"))
        assert status["status"] == "missing"
        assert tune.wisdom_info()["entries"] == 2  # untouched

    def test_corrupt_file(self, tmp_path):
        self._seed_entries()
        path = tmp_path / "wisdom.json"
        path.write_text("{not json", encoding="utf-8")
        assert tune.load_wisdom(str(path))["status"] == "corrupt"
        path.write_text('["wrong layout"]', encoding="utf-8")
        assert tune.load_wisdom(str(path))["status"] == "corrupt"
        path.write_text(
            json.dumps({"schema": tune.WISDOM_SCHEMA, "hosts": "oops"}),
            encoding="utf-8",
        )
        assert tune.load_wisdom(str(path))["status"] == "corrupt"
        assert tune.wisdom_info()["entries"] == 2  # untouched throughout

    def test_stale_schema(self, tmp_path):
        path = tmp_path / "wisdom.json"
        path.write_text(
            json.dumps({"schema": "repro.dft.wisdom/0", "hosts": {}}),
            encoding="utf-8",
        )
        assert tune.load_wisdom(str(path))["status"] == "stale-schema"

    def test_no_host_section(self, tmp_path):
        path = tmp_path / "wisdom.json"
        path.write_text(
            json.dumps(
                {"schema": tune.WISDOM_SCHEMA,
                 "hosts": {"some-other-box": {"entries": {}}}}
            ),
            encoding="utf-8",
        )
        assert tune.load_wisdom(str(path))["status"] == "no-host-section"

    def test_save_preserves_other_hosts(self, tmp_path):
        path = tmp_path / "wisdom.json"
        foreign = {
            "schema": tune.WISDOM_SCHEMA,
            "hosts": {"cluster-node-7": {"entries": {
                "256|complex128|1": {"variant": "radix4",
                                     "group_elements": None,
                                     "tile_elements": None},
            }}},
        }
        path.write_text(json.dumps(foreign), encoding="utf-8")
        self._seed_entries()
        tune.save_wisdom(str(path))
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert "cluster-node-7" in doc["hosts"]
        assert len(doc["hosts"]) == 2

    def test_malformed_entries_skipped(self, tmp_path):
        import socket

        path = tmp_path / "wisdom.json"
        path.write_text(
            json.dumps({
                "schema": tune.WISDOM_SCHEMA,
                "hosts": {socket.gethostname(): {"entries": {
                    "bad-key": {"variant": "radix2",
                                "group_elements": None,
                                "tile_elements": None},
                    "512|complex128|oops": {"variant": "radix2",
                                            "group_elements": None,
                                            "tile_elements": None},
                    "512|complex128|1": {"variant": "warp_drive"},
                    "1024|complex128|1": {"variant": "radix4",
                                          "group_elements": None,
                                          "tile_elements": None},
                }}},
            }),
            encoding="utf-8",
        )
        status = tune.load_wisdom(str(path))
        assert status["status"] == "ok" and status["loaded"] == 1
        assert tune.tuned_config_for(1024, np.complex128, 1) is not None
