"""Tests for the FFT backend registry."""

import numpy as np
import pytest

from repro.dft import FftBackend, available_backends, get_backend, register_backend


class TestRegistry:
    def test_builtin_backends_present(self):
        names = available_backends()
        assert "repro" in names and "numpy" in names

    def test_get_by_name(self):
        assert get_backend("numpy").name == "numpy"

    def test_instance_passthrough(self):
        be = get_backend("repro")
        assert get_backend(be) is be

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="numpy"):
            get_backend("mkl")

    def test_register_duplicate_rejected(self):
        be = get_backend("numpy")
        with pytest.raises(ValueError, match="already registered"):
            register_backend(FftBackend("numpy", be.fft, be.ifft))

    def test_register_overwrite_allowed(self):
        be = get_backend("numpy")
        register_backend(FftBackend("numpy", be.fft, be.ifft), overwrite=True)
        assert get_backend("numpy").fft is be.fft


class TestBackendAgreement:
    """The two built-in backends must agree — a cross-implementation check."""

    @pytest.mark.parametrize("n", [16, 60, 97, 640])
    def test_forward_agreement(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        a = get_backend("repro").fft(x)
        b = get_backend("numpy").fft(x)
        np.testing.assert_allclose(a, b, atol=1e-9 * n)

    @pytest.mark.parametrize("n", [16, 60])
    def test_inverse_agreement(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        a = get_backend("repro").ifft(x)
        b = get_backend("numpy").ifft(x)
        np.testing.assert_allclose(a, b, atol=1e-11)

    def test_batched_agreement(self, rng):
        x = rng.standard_normal((4, 80)) + 1j * rng.standard_normal((4, 80))
        np.testing.assert_allclose(
            get_backend("repro").fft(x), get_backend("numpy").fft(x), atol=1e-9
        )
