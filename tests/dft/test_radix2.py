"""Tests for the iterative radix-2 kernel."""

import numpy as np
import pytest

from repro.dft import dft, fft_radix2, ifft_radix2


class TestFftRadix2:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 256, 4096])
    def test_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft_radix2(x), np.fft.fft(x), atol=1e-10 * max(n, 1))

    def test_matches_naive_dft(self, rng):
        x = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        np.testing.assert_allclose(fft_radix2(x), dft(x), atol=1e-10)

    def test_batched_2d(self, rng):
        x = rng.standard_normal((5, 64)) + 1j * rng.standard_normal((5, 64))
        np.testing.assert_allclose(fft_radix2(x), np.fft.fft(x, axis=-1), atol=1e-10)

    def test_batched_3d(self, rng):
        x = rng.standard_normal((3, 4, 16)) + 1j * rng.standard_normal((3, 4, 16))
        np.testing.assert_allclose(fft_radix2(x), np.fft.fft(x, axis=-1), atol=1e-10)

    def test_batch_rows_are_independent(self, rng):
        x = rng.standard_normal((2, 32)) + 1j * rng.standard_normal((2, 32))
        full = fft_radix2(x)
        np.testing.assert_array_equal(full[0], fft_radix2(x[0]))
        np.testing.assert_array_equal(full[1], fft_radix2(x[1]))

    def test_input_not_modified(self, rng):
        x = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        copy = x.copy()
        fft_radix2(x)
        np.testing.assert_array_equal(x, copy)

    def test_real_input_promoted(self):
        x = np.ones(8)
        y = fft_radix2(x)
        assert y.dtype == np.complex128
        assert abs(y[0] - 8) < 1e-12

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            fft_radix2(np.zeros(12))

    def test_length_one_is_identity(self):
        np.testing.assert_array_equal(fft_radix2(np.array([3 + 4j])), [3 + 4j])


class TestIfftRadix2:
    @pytest.mark.parametrize("n", [1, 2, 8, 128])
    def test_roundtrip(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(ifft_radix2(fft_radix2(x)), x, atol=1e-11)

    def test_matches_numpy(self, rng):
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        np.testing.assert_allclose(ifft_radix2(x), np.fft.ifft(x), atol=1e-12)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ifft_radix2(np.zeros(10))


class TestParseval:
    """Energy conservation |y|^2 = n |x|^2 — a global numerical check."""

    @pytest.mark.parametrize("n", [8, 64, 1024])
    def test_energy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        y = fft_radix2(x)
        assert np.sum(np.abs(y) ** 2) == pytest.approx(n * np.sum(np.abs(x) ** 2), rel=1e-12)
