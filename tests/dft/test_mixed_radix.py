"""Tests for the mixed-radix Cooley-Tukey driver."""

import numpy as np
import pytest

from repro.dft import fft_mixed_radix


class TestFftMixedRadix:
    @pytest.mark.parametrize(
        "n", [1, 2, 3, 5, 6, 9, 12, 15, 30, 36, 60, 100, 120, 640, 1280, 1000]
    )
    def test_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(
            fft_mixed_radix(x), np.fft.fft(x), atol=1e-9 * max(n, 1)
        )

    def test_soi_oversampled_size(self, rng):
        """M' = 5*M/4 with M a power of two is the size SOI leans on."""
        n = 5 * 1024 // 4 * 4  # 5120... keep it explicit:
        n = 5 * 256
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft_mixed_radix(x), np.fft.fft(x), atol=1e-9 * n)

    @pytest.mark.parametrize("n", [6, 15, 160])
    def test_inverse_roundtrip(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(
            fft_mixed_radix(fft_mixed_radix(x), inverse=True), x, atol=1e-10
        )

    def test_inverse_matches_numpy(self, rng):
        x = rng.standard_normal(90) + 1j * rng.standard_normal(90)
        np.testing.assert_allclose(
            fft_mixed_radix(x, inverse=True), np.fft.ifft(x), atol=1e-12
        )

    def test_batched(self, rng):
        x = rng.standard_normal((4, 48)) + 1j * rng.standard_normal((4, 48))
        np.testing.assert_allclose(
            fft_mixed_radix(x), np.fft.fft(x, axis=-1), atol=1e-10
        )

    def test_large_prime_delegates_to_bluestein(self, rng):
        x = rng.standard_normal(127) + 1j * rng.standard_normal(127)
        np.testing.assert_allclose(fft_mixed_radix(x), np.fft.fft(x), atol=1e-9)

    def test_composite_with_large_prime_factor(self, rng):
        n = 4 * 101
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft_mixed_radix(x), np.fft.fft(x), atol=1e-9 * n)

    def test_linearity(self, rng):
        n = 60
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        y = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        lhs = fft_mixed_radix(2.0 * x + 3j * y)
        rhs = 2.0 * fft_mixed_radix(x) + 3j * fft_mixed_radix(y)
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fft_mixed_radix(np.zeros(0))

    def test_time_shift_theorem(self, rng):
        """x rolled by s => spectrum times exp(-2 pi i s k / n)."""
        n, s = 48, 7
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        y = fft_mixed_radix(np.roll(x, s))
        phase = np.exp(-2j * np.pi * s * np.arange(n) / n)
        np.testing.assert_allclose(y, fft_mixed_radix(x) * phase, atol=1e-10)
