"""Tests for the O(N^2) reference DFT (the correctness oracle itself)."""

import numpy as np
import pytest

from repro.dft import dft, dft_matrix, idft


class TestDftMatrix:
    def test_shape(self):
        assert dft_matrix(5).shape == (5, 5)

    def test_first_row_and_column_are_ones(self):
        f = dft_matrix(6)
        np.testing.assert_allclose(f[0], 1.0)
        np.testing.assert_allclose(f[:, 0], 1.0)

    def test_unitary_up_to_scale(self):
        n = 8
        f = dft_matrix(n)
        np.testing.assert_allclose(f @ f.conj().T, n * np.eye(n), atol=1e-12)

    def test_inverse_flag(self):
        n = 7
        prod = dft_matrix(n) @ dft_matrix(n, inverse=True)
        np.testing.assert_allclose(prod, n * np.eye(n), atol=1e-12)

    def test_symmetric(self):
        f = dft_matrix(9)
        np.testing.assert_allclose(f, f.T, atol=1e-15)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            dft_matrix(0)


class TestDft:
    def test_delta_gives_flat_spectrum(self):
        x = np.zeros(8, dtype=complex)
        x[0] = 1.0
        np.testing.assert_allclose(dft(x), np.ones(8), atol=1e-14)

    def test_constant_gives_delta(self):
        y = dft(np.ones(16, dtype=complex))
        expected = np.zeros(16)
        expected[0] = 16.0
        np.testing.assert_allclose(y, expected, atol=1e-12)

    def test_single_tone_lands_on_its_bin(self):
        n, f = 32, 5
        x = np.exp(2j * np.pi * f * np.arange(n) / n)
        y = dft(x)
        assert abs(y[f] - n) < 1e-10
        mask = np.ones(n, bool)
        mask[f] = False
        assert np.max(np.abs(y[mask])) < 1e-10

    @pytest.mark.parametrize("n", [1, 2, 3, 10, 33, 64])
    def test_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(dft(x), np.fft.fft(x), atol=1e-10 * n)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            dft(np.zeros((2, 3)))


class TestIdft:
    @pytest.mark.parametrize("n", [1, 4, 11, 30])
    def test_roundtrip(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(idft(dft(x)), x, atol=1e-11)

    def test_matches_numpy(self, rng):
        x = rng.standard_normal(17) + 1j * rng.standard_normal(17)
        np.testing.assert_allclose(idft(x), np.fft.ifft(x), atol=1e-12)
