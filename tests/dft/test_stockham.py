"""Tests for the iterative batched Stockham kernel.

The kernel replaced the seed's recursive DIT radix-2 core, and the
contract is strict: same butterfly pairings, same twiddle values, same
operation order — so outputs are *bit-for-bit* identical to the
reference decimation-in-time network embedded below (the seed
implementation, kept here verbatim as the oracle).
"""

import numpy as np
import pytest

from repro.dft import fft_radix2, ifft_radix2
from repro.dft.stockham import (
    clear_stage_cache,
    stage_twiddles,
    stockham_fft,
    stockham_fft_t,
    stockham_fft_tt,
)
from repro.dft.twiddle import twiddles
from repro.utils import bit_reverse_indices


def _seed_dit_core(x, sign):
    """The pre-Stockham kernel (seed radix2.py), the bitwise oracle."""
    n = x.shape[-1]
    if n == 1:
        return x.copy()
    a = x[..., bit_reverse_indices(n)]
    batch_shape = a.shape[:-1]
    m = 1
    while m < n:
        w = twiddles(2 * m, sign)[:m]
        a = a.reshape(*batch_shape, n // (2 * m), 2, m)
        even = a[..., 0, :]
        odd = a[..., 1, :] * w
        a = np.concatenate([even + odd, even - odd], axis=-1)
        m *= 2
    return a.reshape(*batch_shape, n)


def _complex(rng, shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestBitIdentityToSeedKernel:
    @pytest.mark.parametrize("n", [2, 4, 8, 64, 512, 4096])
    @pytest.mark.parametrize("sign", [-1, +1])
    def test_single_vector(self, n, sign, rng):
        x = _complex(rng, n)
        np.testing.assert_array_equal(stockham_fft(x, sign), _seed_dit_core(x, sign))

    @pytest.mark.parametrize("shape", [(3, 64), (16, 256), (2, 5, 32)])
    def test_batched(self, shape, rng):
        x = _complex(rng, shape)
        np.testing.assert_array_equal(stockham_fft(x, -1), _seed_dit_core(x, -1))

    def test_public_radix2_wrappers(self, rng):
        x = _complex(rng, (7, 128))
        np.testing.assert_array_equal(fft_radix2(x), _seed_dit_core(x, -1))
        np.testing.assert_array_equal(ifft_radix2(x), _seed_dit_core(x, +1) / 128)

    def test_repeated_calls_do_not_clobber_earlier_results(self, rng):
        # The kernel pools scratch buffers per thread; a returned array
        # must never alias a buffer a later same-size call writes into.
        x1, x2 = _complex(rng, (8, 64)), _complex(rng, (8, 64))
        y1 = stockham_fft(x1, -1)
        snapshot = y1.copy()
        stockham_fft(x2, -1)
        np.testing.assert_array_equal(y1, snapshot)


class TestTransposedVariants:
    @pytest.mark.parametrize("shape", [(1, 8), (5, 1), (12, 256), (40, 512)])
    def test_fft_t_is_transposed_fft(self, shape, rng):
        x2 = _complex(rng, shape)
        out = stockham_fft_t(x2, -1)
        np.testing.assert_array_equal(out, stockham_fft(x2, -1).T)
        assert out.flags.c_contiguous

    @pytest.mark.parametrize("shape", [(8, 1), (1, 5), (8, 2560), (512, 40)])
    def test_fft_tt_transforms_columns_in_place_of_layout(self, shape, rng):
        xt = _complex(rng, shape)
        out = stockham_fft_tt(xt, -1)
        np.testing.assert_array_equal(out, stockham_fft(xt.T, -1).T)
        assert out.shape == xt.shape

    def test_fft_tt_accepts_strided_column_slices(self, rng):
        # The fused SOI path hands the kernel views; grouped execution
        # slices columns, so non-contiguous input must work unchanged.
        xt = _complex(rng, (64, 48))
        view = xt[:, 5:37]
        np.testing.assert_array_equal(
            stockham_fft_tt(view, -1), stockham_fft(view.T, -1).T
        )

    def test_input_never_modified(self, rng):
        xt = _complex(rng, (32, 9))  # 9 column transforms of length 32
        x2 = _complex(rng, (9, 32))  # 9 row transforms of length 32
        before_t, before_2 = xt.copy(), x2.copy()
        stockham_fft_tt(xt, -1)
        stockham_fft_t(x2, -1)
        np.testing.assert_array_equal(xt, before_t)
        np.testing.assert_array_equal(x2, before_2)


class TestStageTables:
    def test_tables_cover_all_stages(self):
        stages = stage_twiddles(256, -1)
        assert len(stages) == 8  # log2(256)

    def test_tables_are_cached_and_read_only(self):
        a = stage_twiddles(128, -1)
        assert stage_twiddles(128, -1) is a
        assert a[0] is None  # the m=1 twiddle is exactly 1: no multiply
        for stage in a[1:]:
            assert not stage[0].flags.writeable
            assert not stage[1].flags.writeable

    def test_clear_stage_cache(self):
        a = stage_twiddles(64, -1)
        clear_stage_cache()
        assert stage_twiddles(64, -1) is not a
