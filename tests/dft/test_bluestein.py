"""Tests for the Bluestein chirp-z kernel."""

import numpy as np
import pytest

from repro.dft import fft_bluestein


class TestFftBluestein:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 13, 97, 127, 251, 509])
    def test_primes_match_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft_bluestein(x), np.fft.fft(x), atol=1e-9 * max(n, 1))

    @pytest.mark.parametrize("n", [4, 12, 100, 256])
    def test_composites_also_work(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft_bluestein(x), np.fft.fft(x), atol=1e-9 * n)

    @pytest.mark.parametrize("n", [7, 101])
    def test_inverse_roundtrip(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(
            fft_bluestein(fft_bluestein(x), inverse=True), x, atol=1e-10
        )

    def test_batched(self, rng):
        x = rng.standard_normal((3, 31)) + 1j * rng.standard_normal((3, 31))
        np.testing.assert_allclose(fft_bluestein(x), np.fft.fft(x, axis=-1), atol=1e-9)

    def test_large_prime_accuracy(self, rng):
        """The exact chirp reduction must hold accuracy at larger n."""
        n = 10007
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        err = np.max(np.abs(fft_bluestein(x) - np.fft.fft(x)))
        scale = np.max(np.abs(np.fft.fft(x)))
        assert err / scale < 1e-12

    def test_single_tone(self):
        n, f = 11, 3
        x = np.exp(2j * np.pi * f * np.arange(n) / n)
        y = fft_bluestein(x)
        assert abs(y[f] - n) < 1e-10

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fft_bluestein(np.zeros(0))
