"""Tests for the global FFT plan cache: identity, LRU, thread safety.

Thread safety matters because :func:`repro.simmpi.run_spmd` ranks are
threads — a distributed SOI FFT has every rank hammering ``plan_for``
concurrently, and the cache must hand them all the *same* plan object
with consistent counters.
"""

import numpy as np
import pytest

from repro.dft import (
    FftPlan,
    clear_plan_cache,
    fft,
    ifft,
    plan_cache_info,
    plan_for,
    save_plan_cache_shapes,
    set_plan_cache_limit,
    warm_plan_cache,
    warm_plan_cache_from_file,
)
from repro.simmpi import run_spmd


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestCacheBasics:
    def test_same_size_returns_same_object(self):
        assert plan_for(256) is plan_for(256)

    def test_hit_miss_counters(self):
        plan_for(64)
        plan_for(64)
        plan_for(128)
        info = plan_cache_info()
        assert info["entries"] == 2
        assert info["misses"] == 2
        assert info["hits"] == 1
        assert info["evictions"] == 0

    def test_lru_eviction_drops_oldest(self):
        previous = set_plan_cache_limit(2)
        try:
            first = plan_for(8)
            plan_for(16)
            plan_for(32)  # evicts the length-8 plan
            info = plan_cache_info()
            assert info["entries"] == 2
            assert info["evictions"] == 1
            assert plan_for(8) is not first  # rebuilt after eviction
        finally:
            set_plan_cache_limit(previous)

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="max_plans"):
            set_plan_cache_limit(0)

    def test_clear_resets_counters(self):
        plan_for(64)
        clear_plan_cache()
        info = plan_cache_info()
        assert info["entries"] == 0
        assert info["hits"] == 0
        assert info["misses"] == 0
        assert info["evictions"] == 0
        # The wisdom counters ride along (tuned-kernel tier).
        assert {"wisdom_entries", "wisdom_hits", "races_run"} <= info.keys()


class TestCachedOutputs:
    @pytest.mark.parametrize("n", [64, 360, 97])
    def test_cached_forward_bit_identical_to_fresh_plan(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_array_equal(fft(x), FftPlan(n).execute(x, inverse=False))

    @pytest.mark.parametrize("n", [64, 360, 97])
    def test_cached_inverse_bit_identical_to_fresh_plan(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_array_equal(ifft(x), FftPlan(n).execute(x, inverse=True))

    def test_one_shot_helpers_populate_the_cache(self, rng):
        x = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        fft(x)
        ifft(x)  # same plan serves both directions
        info = plan_cache_info()
        assert info["entries"] == 1
        assert info["misses"] == 1
        assert info["hits"] == 1


class TestDtypeKeying:
    """Same N, different caller dtype/layout: one sound shared plan.

    Regression guard for the cache-key collision class: the key used to
    be the bare length, so nothing *stated* that a plan built for one
    dtype was safe for another.  The key now carries the normalised
    compute dtype and the plan casts at its boundary — mixed-dtype
    callers share one plan by construction, bit-identically.
    """

    DTYPES = [np.float32, np.float64, np.complex64, np.complex128, np.int32]

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_all_numeric_dtypes_share_one_plan(self, dtype):
        assert plan_for(64, dtype) is plan_for(64, np.complex128)
        assert plan_cache_info()["entries"] == 1

    @pytest.mark.parametrize("dtype", [np.float32, np.complex64])
    @pytest.mark.parametrize("n", [64, 360, 97])
    def test_low_precision_input_bit_identical_to_promoted(self, dtype, n, rng):
        """A float32/complex64 caller must execute the identical
        complex128 kernel as if it had promoted its input itself."""
        if np.dtype(dtype).kind == "f":
            x = rng.standard_normal(n).astype(dtype)
        else:
            x = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(dtype)
        out = fft(x)
        promoted = FftPlan(n).execute(x.astype(np.complex128), inverse=False)
        assert out.dtype == np.complex128
        np.testing.assert_array_equal(out, promoted)

    def test_fortran_ordered_and_strided_inputs(self, rng):
        xb = rng.standard_normal((4, 128)) + 1j * rng.standard_normal((4, 128))
        expected = FftPlan(128).execute(xb, inverse=False)
        np.testing.assert_array_equal(fft(np.asfortranarray(xb)), expected)
        strided = np.ascontiguousarray(
            np.repeat(xb, 2, axis=1)
        )[:, ::2]  # non-contiguous view with the same values
        np.testing.assert_array_equal(fft(strided), expected)

    def test_interleaved_dtypes_do_not_corrupt_each_other(self, rng):
        x64 = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        x32 = x64.astype(np.complex64)
        ref64 = FftPlan(128).execute(x64, inverse=False)
        ref32 = FftPlan(128).execute(x32.astype(np.complex128), inverse=False)
        for _ in range(3):  # alternate through the one shared entry
            np.testing.assert_array_equal(fft(x64), ref64)
            np.testing.assert_array_equal(fft(x32), ref32)
        assert plan_cache_info()["entries"] == 1

    def test_non_numeric_dtype_rejected(self):
        with pytest.raises(TypeError, match="dtype"):
            plan_for(64, np.dtype("U8"))


class TestWarmupPersistence:
    """Server-start warmup: explicit shapes and the persisted shape list."""

    def test_warm_plan_cache_counts_built_vs_already(self):
        out = warm_plan_cache([64, (128, np.float32), 64])
        assert out == {"requested": 3, "built": 2, "already": 1}
        info = plan_cache_info()
        assert info["entries"] == 2

    def test_warmed_shapes_serve_hits(self):
        warm_plan_cache([64])
        before = plan_cache_info()
        plan_for(64)
        after = plan_cache_info()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_save_load_round_trip(self, tmp_path):
        import json

        from repro.dft.cache import SHAPES_SCHEMA

        plan_for(64)
        plan_for(360)
        path = tmp_path / "shapes.json"
        assert save_plan_cache_shapes(str(path)) == 2
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["schema"] == SHAPES_SCHEMA
        assert len(doc["shapes"]) == 2

        clear_plan_cache()
        out = warm_plan_cache_from_file(str(path))
        assert out == {"requested": 2, "built": 2, "already": 0}
        info = plan_cache_info()
        assert info["entries"] == 2 and info["misses"] == 2
        # A second load finds everything warm.
        again = warm_plan_cache_from_file(str(path))
        assert again == {"requested": 2, "built": 0, "already": 2}

    def test_round_tripped_plans_execute_bit_identically(self, tmp_path, rng):
        x = rng.standard_normal(360) + 1j * rng.standard_normal(360)
        expected = FftPlan(360).execute(x, inverse=False)
        plan_for(360)
        path = tmp_path / "shapes.json"
        save_plan_cache_shapes(str(path))
        clear_plan_cache()
        warm_plan_cache_from_file(str(path))
        np.testing.assert_array_equal(fft(x), expected)

    def test_wrong_schema_rejected(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope/0", "shapes": []}))
        with pytest.raises(ValueError, match="schema"):
            warm_plan_cache_from_file(str(path))


class TestThreadSafety:
    SIZES = [32, 64, 128, 256]

    def test_concurrent_ranks_share_plan_objects(self):
        nranks = 8

        def body(comm):
            # Every rank requests every size, overlapping deliberately.
            return [id(plan_for(n)) for n in self.SIZES for _ in range(16)]

        results = run_spmd(nranks, body).values
        for per_size in zip(*results):
            assert len(set(per_size)) == 1  # one shared object per size

    def test_concurrent_counters_are_consistent(self):
        nranks = 8
        repeats = 16

        def body(comm):
            for n in self.SIZES:
                for _ in range(repeats):
                    plan_for(n)
            return comm.rank

        run_spmd(nranks, body)
        info = plan_cache_info()
        assert info["entries"] == len(self.SIZES)
        assert info["misses"] == len(self.SIZES)  # each size built exactly once
        assert info["hits"] == nranks * repeats * len(self.SIZES) - info["misses"]

    def test_concurrent_outputs_bit_identical_to_uncached(self, rng):
        xs = {
            n: rng.standard_normal(n) + 1j * rng.standard_normal(n)
            for n in self.SIZES
        }
        expected = {n: FftPlan(n).execute(x, inverse=False) for n, x in xs.items()}

        def body(comm):
            return {n: fft(xs[n]) for n in self.SIZES}

        for per_rank in run_spmd(8, body).values:
            for n in self.SIZES:
                np.testing.assert_array_equal(per_rank[n], expected[n])


class TestEvictionUnderConcurrency:
    """``set_plan_cache_limit(1)`` *while* P=4 ranks execute transforms.

    The worst case for the LRU: a bound of one entry with four sizes in
    flight means nearly every lookup evicts what another rank just
    built, while other ranks concurrently widen and re-shrink the
    bound.  The cache must neither deadlock nor change a single output
    bit — evictions may only ever cost rebuild time.
    """

    SIZES = [32, 64, 128, 256]
    NRANKS = 4

    def test_limit_thrash_is_deadlock_free_and_bitwise_stable(self):
        for seed in range(10):
            gen = np.random.default_rng(1000 + seed)
            xs = {
                n: gen.standard_normal(n) + 1j * gen.standard_normal(n)
                for n in self.SIZES
            }
            expected = {
                n: FftPlan(n).execute(x, inverse=False) for n, x in xs.items()
            }

            def body(comm, gen=gen):
                order = list(self.SIZES)
                np.random.default_rng(seed * 31 + comm.rank).shuffle(order)
                out = {}
                for _ in range(4):
                    # Even ranks keep slamming the bound down to one
                    # entry; odd ranks keep widening it mid-flight.
                    set_plan_cache_limit(1 if comm.rank % 2 == 0 else 8)
                    for n in order:
                        out[n] = fft(xs[n])
                return out

            previous = set_plan_cache_limit(1)
            try:
                res = run_spmd(self.NRANKS, body, timeout=30)
            finally:
                set_plan_cache_limit(previous)
            for per_rank in res.values:
                for n in self.SIZES:
                    np.testing.assert_array_equal(per_rank[n], expected[n])
            info = plan_cache_info()
            assert info["entries"] <= len(self.SIZES)
            assert info["evictions"] > 0  # the thrash actually thrashed
