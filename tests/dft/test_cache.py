"""Tests for the global FFT plan cache: identity, LRU, thread safety.

Thread safety matters because :func:`repro.simmpi.run_spmd` ranks are
threads — a distributed SOI FFT has every rank hammering ``plan_for``
concurrently, and the cache must hand them all the *same* plan object
with consistent counters.
"""

import numpy as np
import pytest

from repro.dft import (
    FftPlan,
    clear_plan_cache,
    fft,
    ifft,
    plan_cache_info,
    plan_for,
    set_plan_cache_limit,
)
from repro.simmpi import run_spmd


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestCacheBasics:
    def test_same_size_returns_same_object(self):
        assert plan_for(256) is plan_for(256)

    def test_hit_miss_counters(self):
        plan_for(64)
        plan_for(64)
        plan_for(128)
        info = plan_cache_info()
        assert info["entries"] == 2
        assert info["misses"] == 2
        assert info["hits"] == 1
        assert info["evictions"] == 0

    def test_lru_eviction_drops_oldest(self):
        previous = set_plan_cache_limit(2)
        try:
            first = plan_for(8)
            plan_for(16)
            plan_for(32)  # evicts the length-8 plan
            info = plan_cache_info()
            assert info["entries"] == 2
            assert info["evictions"] == 1
            assert plan_for(8) is not first  # rebuilt after eviction
        finally:
            set_plan_cache_limit(previous)

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="max_plans"):
            set_plan_cache_limit(0)

    def test_clear_resets_counters(self):
        plan_for(64)
        clear_plan_cache()
        assert plan_cache_info() == {
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "max_plans": plan_cache_info()["max_plans"],
        }


class TestCachedOutputs:
    @pytest.mark.parametrize("n", [64, 360, 97])
    def test_cached_forward_bit_identical_to_fresh_plan(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_array_equal(fft(x), FftPlan(n).execute(x, inverse=False))

    @pytest.mark.parametrize("n", [64, 360, 97])
    def test_cached_inverse_bit_identical_to_fresh_plan(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_array_equal(ifft(x), FftPlan(n).execute(x, inverse=True))

    def test_one_shot_helpers_populate_the_cache(self, rng):
        x = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        fft(x)
        ifft(x)  # same plan serves both directions
        info = plan_cache_info()
        assert info["entries"] == 1
        assert info["misses"] == 1
        assert info["hits"] == 1


class TestThreadSafety:
    SIZES = [32, 64, 128, 256]

    def test_concurrent_ranks_share_plan_objects(self):
        nranks = 8

        def body(comm):
            # Every rank requests every size, overlapping deliberately.
            return [id(plan_for(n)) for n in self.SIZES for _ in range(16)]

        results = run_spmd(nranks, body).values
        for per_size in zip(*results):
            assert len(set(per_size)) == 1  # one shared object per size

    def test_concurrent_counters_are_consistent(self):
        nranks = 8
        repeats = 16

        def body(comm):
            for n in self.SIZES:
                for _ in range(repeats):
                    plan_for(n)
            return comm.rank

        run_spmd(nranks, body)
        info = plan_cache_info()
        assert info["entries"] == len(self.SIZES)
        assert info["misses"] == len(self.SIZES)  # each size built exactly once
        assert info["hits"] == nranks * repeats * len(self.SIZES) - info["misses"]

    def test_concurrent_outputs_bit_identical_to_uncached(self, rng):
        xs = {
            n: rng.standard_normal(n) + 1j * rng.standard_normal(n)
            for n in self.SIZES
        }
        expected = {n: FftPlan(n).execute(x, inverse=False) for n, x in xs.items()}

        def body(comm):
            return {n: fft(xs[n]) for n in self.SIZES}

        for per_rank in run_spmd(8, body).values:
            for n in self.SIZES:
                np.testing.assert_array_equal(per_rank[n], expected[n])
