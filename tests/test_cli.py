"""Tests for the `python -m repro` figure-regeneration CLI."""

import pytest

from repro.__main__ import SECTIONS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig5", "fig9"):
            assert name in out

    def test_table1_section(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "330" in out

    def test_snr_section(self, capsys):
        assert main(["snr"]) == 0
        out = capsys.readouterr().out
        assert "Section 7.2" in out
        assert "SOI" in out

    def test_traffic_section(self, capsys):
        assert main(["traffic"]) == 0
        out = capsys.readouterr().out
        assert "all-to-all rounds" in out

    def test_fig9_section(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "c=0.75" in out

    def test_model_figures(self, capsys):
        assert main(["fig5", "fig6", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 6" in out and "Figure 8" in out
        assert "speedup SOI over MKL" in out

    def test_unknown_section_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig42"])

    def test_all_section_names_registered(self):
        assert set(SECTIONS) == {
            "table1",
            "snr",
            "traffic",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
        }
