"""Tests for the `python -m repro` figure-regeneration CLI."""

import json

import pytest

from repro.__main__ import SECTIONS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig5", "fig9"):
            assert name in out

    def test_table1_section(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "330" in out

    def test_snr_section(self, capsys):
        assert main(["snr"]) == 0
        out = capsys.readouterr().out
        assert "Section 7.2" in out
        assert "SOI" in out

    def test_traffic_section(self, capsys):
        assert main(["traffic"]) == 0
        out = capsys.readouterr().out
        assert "all-to-all rounds" in out

    def test_fig9_section(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "c=0.75" in out

    def test_model_figures(self, capsys):
        assert main(["fig5", "fig6", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 6" in out and "Figure 8" in out
        assert "speedup SOI over MKL" in out

    def test_unknown_section_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig42"])

    def test_all_section_names_registered(self):
        assert set(SECTIONS) == {
            "table1",
            "snr",
            "traffic",
            "trace",
            "bench-micro",
            "bench-overlap",
            "bench-resilience",
            "bench-serve",
            "bench-a2a",
            "bench-scale",
            "bench-tune",
            "serve",
            "check",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
        }


def _json_payload(out: str) -> dict:
    """The JSON object `--json` appends after the text output."""
    return json.loads(out[out.index("{\n") :])


class TestJsonOutput:
    def test_json_flag_appends_parseable_payload(self, capsys):
        assert main(["snr", "traffic", "--json"]) == 0
        out = capsys.readouterr().out
        assert "Section 7.2" in out  # text tables still printed
        payload = _json_payload(out)
        assert set(payload) == {"snr", "traffic"}
        assert payload["snr"]["soi_snr_db"] > 280.0
        assert payload["traffic"]["soi_alltoall_rounds"] == 1
        assert payload["traffic"]["std_alltoall_rounds"] == 3

    def test_traffic_payload_embeds_stats_as_dict(self, capsys):
        assert main(["traffic", "--json"]) == 0
        payload = _json_payload(capsys.readouterr().out)
        phases = payload["traffic"]["soi_stats"]["phases"]
        assert "alltoall" in phases
        # Pair keys are the JSON-safe "src->dst" form.
        assert all(
            "->" in key for key in phases["alltoall"]["bytes_by_pair"]
        )

    def test_without_flag_no_json_dump(self, capsys):
        assert main(["snr"]) == 0
        assert "{\n" not in capsys.readouterr().out


class TestTraceSection:
    def test_timelines_and_epoch_counts(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "SOI (one all-to-all)" in out
        assert "six-step (three all-to-alls)" in out
        assert "ms virtual" in out
        assert "1 vs 3 all-to-all epochs" in out

    def test_trace_out_writes_chrome_json(self, capsys, tmp_path):
        path = tmp_path / "soi.trace.json"
        assert main(["trace", "--trace-out", str(path), "--json"]) == 0
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        payload = _json_payload(capsys.readouterr().out)
        assert payload["trace"]["runs"]["soi"]["rollup"]["alltoall_epochs"] == 1
        assert payload["trace"]["runs"]["transpose"]["rollup"]["alltoall_epochs"] == 3
        assert payload["trace"]["trace_out"] == str(path)

    def test_chaos_seed_puts_retransmits_on_timeline(self, capsys):
        assert main(["trace", "--chaos-seed", "7", "--json"]) == 0
        out = capsys.readouterr().out
        assert "chaos seed 7" in out
        payload = _json_payload(out)
        soi = payload["trace"]["runs"]["soi"]
        assert soi["rollup"]["retransmits"] > 0
        assert soi["snr_db"] > 280.0  # transport recovered the run


class TestServeSection:
    def test_serve_demo_prints_slo_table(self, capsys):
        assert main(["serve", "--json"]) == 0
        out = capsys.readouterr().out
        assert "serve —" in out
        assert "interactive" in out and "best_effort" in out
        payload = _json_payload(out)
        report = payload["serve"]["report"]
        assert report["completed"] == report["requests"] == 48
        classes = report["classes"]
        assert set(classes) == {"interactive", "batch", "best_effort"}
        for cls in classes.values():
            assert cls["p50_ms"] <= cls["p95_ms"] <= cls["p99_ms"]
        # The demo load coalesces: fewer batches than requests.
        assert report["batches"] < report["requests"]
        assert payload["serve"]["warmup"]["shapes"]["requested"] == 1


class TestCheckSection:
    def test_check_smoke_with_report(self, capsys, tmp_path):
        path = tmp_path / "check.json"
        assert (
            main(
                [
                    "check",
                    "--check-size", "small",
                    "--schedules", "3",
                    "--seed", "0",
                    "--report-out", str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "conformance registry" in out
        assert "deterministic: True" in out
        assert "clean: True" in out
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["ok"] is True
        assert doc["conformance"]["summary"]["entry_points"] >= 12
        assert doc["fuzz"]["schedules"] == 3
        assert doc["hb"]["clean"] is True

    def test_check_json_payload_carries_verdict(self, capsys):
        assert main(["check", "--check-size", "small", "--schedules", "2", "--json"]) == 0
        payload = _json_payload(capsys.readouterr().out)
        assert payload["check"]["ok"] is True
        assert payload["check"]["fuzz"]["deterministic"] is True

    def test_failed_audit_fails_the_run(self, capsys, monkeypatch):
        """main() must exit non-zero when a section reports ok=False."""
        from repro import __main__ as cli

        monkeypatch.setitem(
            cli.SECTIONS, "check", lambda args: {"ok": False, "reason": "forced"}
        )
        assert main(["check"]) == 1
