"""Tests for the weak-scaling sweeps — the figure-level claims."""

import pytest

from repro.cluster import cluster
from repro.perf import run_sweep

NODES = [2, 4, 8, 16, 32, 64]


@pytest.fixture(scope="module")
def endeavor_sweep():
    return run_sweep(cluster("endeavor"), NODES)


@pytest.fixture(scope="module")
def gordon_sweep():
    return run_sweep(cluster("gordon"), NODES, libraries=["SOI", "MKL"])


@pytest.fixture(scope="module")
def ethernet_sweep():
    return run_sweep(cluster("endeavor-10gbe"), NODES, libraries=["SOI", "MKL"])


class TestFig5Shape:
    """Endeavor fat-tree: SOI beats every baseline, MKL best non-SOI."""

    def test_soi_wins_everywhere(self, endeavor_sweep):
        for n in NODES:
            soi = endeavor_sweep.points[("SOI", n)].gflops
            for lib in ("MKL", "FFTE", "FFTW"):
                assert soi > endeavor_sweep.points[(lib, n)].gflops

    def test_mkl_is_best_baseline(self, endeavor_sweep):
        for n in NODES:
            mkl = endeavor_sweep.points[("MKL", n)].gflops
            assert mkl >= endeavor_sweep.points[("FFTE", n)].gflops
            assert mkl >= endeavor_sweep.points[("FFTW", n)].gflops

    def test_speedup_in_paper_band(self, endeavor_sweep):
        """Fig. 5's line graph stays within ~[1.1, 2.0]."""
        for s in endeavor_sweep.speedup_series("MKL"):
            assert 1.1 < s < 2.0

    def test_gflops_grow_with_node_count(self, endeavor_sweep):
        series = endeavor_sweep.gflops_series("SOI")
        assert all(b > a for a, b in zip(series, series[1:]))

    def test_rows_export(self, endeavor_sweep):
        rows = endeavor_sweep.as_rows()
        assert len(rows) == len(NODES)
        assert "speedup_soi_over_mkl" in rows[0]


class TestFig6Shape:
    """Gordon torus: extra SOI gain beyond 32 nodes vs the fat tree."""

    def test_speedup_grows_with_nodes(self, gordon_sweep):
        sp = gordon_sweep.speedup_series("MKL")
        assert sp[-1] > sp[0]

    def test_torus_exceeds_fat_tree_at_scale(self, gordon_sweep, endeavor_sweep):
        """The Fig. 6 observation: from 32 nodes onwards the torus's
        narrower bisection amplifies SOI's advantage."""
        g = dict(zip(NODES, gordon_sweep.speedup_series("MKL")))
        e = dict(zip(NODES, endeavor_sweep.speedup_series("MKL")))
        assert g[64] > e[64]

    def test_comm_fraction_rises_at_scale(self, gordon_sweep):
        fr = gordon_sweep.comm_fractions("MKL")
        assert fr[-1] >= fr[1]


class TestFig8Shape:
    """10 GbE: communication-dominated; speedup ~ 3/(1+beta) = 2.4."""

    def test_speedup_in_measured_band(self, ethernet_sweep):
        """Paper: 'The speed up factors lie in the interval [2.3, 2.4]'."""
        for s in ethernet_sweep.speedup_series("MKL"):
            assert 2.3 <= s <= 2.4

    def test_near_theoretical_bound(self, ethernet_sweep):
        bound = 3.0 / 1.25
        for s in ethernet_sweep.speedup_series("MKL"):
            assert s <= bound + 1e-9
            assert s >= bound - 0.1

    def test_baseline_comm_fraction_extreme(self, ethernet_sweep):
        for f in ethernet_sweep.comm_fractions("MKL"):
            assert f > 0.95


class TestFig7Shape:
    """Accuracy-performance dial at 64 Gordon nodes: smaller B => faster."""

    def test_speedup_grows_as_b_shrinks(self):
        spec = cluster("gordon")
        speedups = []
        for b in (78, 62, 44, 36):
            sweep = run_sweep(spec, [64], libraries=["SOI", "MKL"], b=b)
            speedups.append(sweep.speedup_series("MKL")[0])
        assert speedups == sorted(speedups)

    def test_ten_digit_speedup_exceeds_full(self):
        """Fig. 7: at ~10 digits SOI gains visibly over full accuracy."""
        spec = cluster("gordon")
        full = run_sweep(spec, [64], libraries=["SOI", "MKL"], b=78)
        ten = run_sweep(spec, [64], libraries=["SOI", "MKL"], b=44)
        assert ten.speedup_series("MKL")[0] > full.speedup_series("MKL")[0] * 1.05
