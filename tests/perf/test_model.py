"""Tests for the Section-7.4 weak-scaling time model."""

import pytest

from repro.cluster import LIBRARY_PROFILES, cluster
from repro.perf import WeakScalingModel


def make_model(lib="SOI", fabric_name="endeavor", **kw):
    spec = cluster(fabric_name)
    return WeakScalingModel(
        profile=LIBRARY_PROFILES[lib], fabric=spec.fabric, node=spec.node, **kw
    )


class TestComponents:
    def test_fft_time_grows_logarithmically(self):
        m = make_model("MKL")
        t1, t64 = m.fft_time(1), m.fft_time(64)
        # weak scaling: per-node time grows like log2(n): +6/28 relative
        assert t64 / t1 == pytest.approx((28 + 6) / 28, rel=0.01)

    def test_conv_time_constant_in_nodes(self):
        """Section 7.4: T_conv(n) roughly constant under weak scaling."""
        m = make_model("SOI")
        assert m.conv_time() == m.conv_time()
        b = m.breakdown(4).t_conv
        assert m.breakdown(64).t_conv == b

    def test_conv_time_zero_for_baselines(self):
        assert make_model("MKL").breakdown(8).t_conv == 0.0

    def test_conv_time_scales_with_b(self):
        t72 = make_model("SOI", b=72).conv_time()
        t36 = make_model("SOI", b=36).conv_time()
        assert t72 == pytest.approx(2 * t36)

    def test_conv_c_knob(self):
        lo = make_model("SOI", conv_c=0.75).conv_time()
        hi = make_model("SOI", conv_c=1.25).conv_time()
        assert hi == pytest.approx(lo * 1.25 / 0.75)

    def test_comm_time_counts_alltoalls(self):
        soi = make_model("SOI").comm_time(8)
        mkl = make_model("MKL").comm_time(8)
        # MKL: 3 exchanges of N vs SOI: 1 exchange of 1.25 N.
        assert mkl / soi == pytest.approx(3.0 / 1.25, rel=1e-6)

    def test_halo_negligible(self):
        """Fig. 4: halo 'typically less than 0.01% of M'."""
        bd = make_model("SOI").breakdown(32)
        assert bd.t_halo < 0.001 * bd.t_comm

    def test_single_node_no_comm(self):
        bd = make_model("SOI").breakdown(1)
        assert bd.t_comm == 0.0 and bd.t_halo == 0.0


class TestPaperStructuralClaims:
    def test_conv_time_about_equals_fft_time(self):
        """Section 7.4: 'the total convolution time in SOI is about the
        same as that of the FFT computation time within it' — the 4x
        flops at 4x the efficiency."""
        m = make_model("SOI", b=72)
        bd = m.breakdown(32)
        assert 0.5 < bd.t_conv / bd.t_fft < 2.0

    def test_soi_about_twice_the_compute_of_plain_fft(self):
        """Section 7.4: 'our full-accuracy SOI implementation takes about
        twice, not five times, as much computation time'."""
        soi = make_model("SOI", b=72).breakdown(32)
        mkl = make_model("MKL").breakdown(32)
        ratio = (soi.t_fft + soi.t_conv) / mkl.t_fft
        assert 1.6 < ratio < 2.8

    def test_communication_dominates_for_baseline(self):
        """Section 1: all-to-alls are '50% to over 90%' of running time."""
        mkl = make_model("MKL")
        assert 0.5 < mkl.breakdown(16).comm_fraction < 0.95

    def test_gflops_metric(self):
        bd = make_model("MKL").breakdown(4)
        import math

        n = bd.n_total
        expected = 5 * n * math.log2(n) / bd.total / 1e9
        assert bd.gflops == pytest.approx(expected)


class TestValidation:
    def test_bad_nodes(self):
        with pytest.raises(ValueError):
            make_model().breakdown(0)

    def test_bad_points(self):
        with pytest.raises(ValueError):
            make_model(points_per_node=0)

    def test_bad_conv_c(self):
        with pytest.raises(ValueError):
            make_model(conv_c=3.0)
