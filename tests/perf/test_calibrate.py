"""Tests for on-machine kernel-rate calibration."""

import pytest

from repro.perf import KernelRates, measure_kernel_rates


class TestMeasureKernelRates:
    @pytest.fixture(scope="class")
    def rates(self):
        return measure_kernel_rates(n=1 << 14, p=8, window="digits10", repeats=2)

    def test_positive_rates(self, rates):
        assert rates.fft_gflops > 0
        assert rates.conv_gflops > 0

    def test_records_parameters(self, rates):
        assert rates.n == 1 << 14
        assert rates.b == 44

    def test_conv_rate_competitive_with_fft(self, rates):
        """The structural claim behind Section 7.4: the regular tensor
        contraction sustains a flop rate at least comparable to the FFT
        (the paper measures 4x; BLAS-backed einsum vs pocketfft here)."""
        assert rates.conv_over_fft > 0.5

    def test_ratio_property(self, rates):
        assert rates.conv_over_fft == pytest.approx(
            rates.conv_gflops / rates.fft_gflops
        )
