"""Tests for the Fig. 9 projection (paper-literal Section 7.4 model)."""

import pytest

from repro.perf import ProjectionModel, projection_curve


class TestProjectionModel:
    def test_alpha_calibration(self):
        """T_fft(1) must reproduce alpha * log2(2^28) by construction."""
        m = ProjectionModel()
        assert m.t_fft(1) == pytest.approx(m.alpha * 28.0)

    def test_tmpi_zero_on_one_node(self):
        assert ProjectionModel().t_mpi(1) == 0.0

    def test_local_channel_bound_small_n(self):
        """Paper: local channels bind for n <= 128."""
        m = ProjectionModel()
        # In the local regime per-node time is constant.
        assert m.t_mpi(16) == pytest.approx(m.t_mpi(128), rel=1e-9)

    def test_bisection_bound_large_n(self):
        """Beyond the local regime the torus bisection dominates and
        per-node time grows like n^(1/3)."""
        m = ProjectionModel()
        t1k = m.t_mpi(1024)
        t8k = m.t_mpi(8 * 1024)
        assert t8k / t1k == pytest.approx(2.0, rel=0.05)  # 8^(1/3)

    def test_conv_time_positive_constant(self):
        m = ProjectionModel()
        assert m.t_conv() > 0

    def test_speedup_below_three(self):
        """3 is the unreachable all-to-all-count bound."""
        m = ProjectionModel()
        for n in (16, 256, 4096, 16384):
            assert m.speedup(n) < 3.0

    def test_speedup_grows_with_scale(self):
        """Fig. 9: projected speedup rises toward Jaguar-scale n."""
        m = ProjectionModel()
        s = [m.speedup(n) for n in (128, 1024, 4096, 16384)]
        assert all(b > a for a, b in zip(s, s[1:]))
        assert s[-1] > 1.5

    def test_c_band_ordering(self):
        """Smaller c (faster convolution) gives larger speedup."""
        m = ProjectionModel()
        assert m.speedup(4096, c=0.75) > m.speedup(4096, c=1.0) > m.speedup(4096, c=1.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProjectionModel().t_fft(0.5)


class TestProjectionCurve:
    def test_curves_keyed_by_c(self):
        curves = projection_curve([16, 1024, 16384])
        assert set(curves) == {0.75, 1.0, 1.25}
        assert all(len(v) == 3 for v in curves.values())

    def test_band_width_is_meaningful(self):
        """The c in [0.75, 1.25] band must visibly separate (Fig. 9 shows
        an envelope, not a line)."""
        curves = projection_curve([2048])
        assert curves[0.75][0] - curves[1.25][0] > 0.05
