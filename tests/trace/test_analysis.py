"""Tests for timeline rollups, wait attribution and critical paths."""

import json

import numpy as np
import pytest

from repro.simmpi import run_spmd
from repro.trace import (
    TraceRecorder,
    alltoall_epochs,
    critical_path,
    rollup,
    wait_attribution,
)


def _traced(nranks, prog):
    rec = TraceRecorder()
    run_spmd(nranks, prog, trace=rec)
    return rec.timeline()


class TestAlltoallEpochs:
    def test_counts_rounds_not_messages(self):
        def prog(comm):
            for _ in range(2):
                comm.alltoall([np.zeros(16) for _ in range(comm.size)])

        assert alltoall_epochs(_traced(4, prog)) == 2

    def test_other_collectives_not_counted(self):
        def prog(comm):
            comm.bcast(np.zeros(8) if comm.rank == 0 else None, root=0)
            comm.barrier()

        assert alltoall_epochs(_traced(3, prog)) == 0

    def test_empty_timeline(self):
        assert alltoall_epochs(TraceRecorder().timeline()) == 0


class TestWaitAttribution:
    def test_p2p_wait_charged_to_sender(self):
        def prog(comm):
            if comm.rank == 0:
                comm.trace_compute("slow", 1e8)
                comm.send(np.zeros(8), dest=1)
            else:
                with comm.phase("pickup"):
                    comm.recv(source=0)

        attr = wait_attribution(_traced(2, prog))
        assert attr["pickup"]["rank0"] > 0.0

    def test_barrier_skew_charged_to_barrier(self):
        def prog(comm):
            comm.trace_compute("skewed", 1e7 * (comm.rank + 1))
            comm.barrier()

        attr = wait_attribution(_traced(2, prog))
        assert attr["default"]["barrier"] > 0.0


class TestCriticalPath:
    def test_covers_makespan_on_clean_run(self):
        def prog(comm):
            comm.trace_compute("work", 1e6 * (comm.rank + 1))
            comm.alltoall([np.zeros(64) for _ in range(comm.size)])
            comm.barrier()

        cp = critical_path(_traced(4, prog))
        assert cp.makespan > 0.0
        assert cp.coverage == pytest.approx(1.0, abs=0.05)
        assert cp.length_s == pytest.approx(
            sum(s.duration for s in cp.spans) + cp.network_s
        )

    def test_path_is_time_ordered_and_crosses_to_slow_rank(self):
        def prog(comm):
            if comm.rank == 0:
                comm.trace_compute("bottleneck", 1e8)
                comm.send(np.zeros(8), dest=1)
            else:
                comm.recv(source=0)
                comm.trace_compute("tail", 1e5)

        cp = critical_path(_traced(2, prog))
        for a, b in zip(cp.spans, cp.spans[1:]):
            assert a.t0 <= b.t0
        # The dominant compute on rank 0 must be on the path even though
        # rank 1 finishes last.
        assert any(s.name == "bottleneck" for s in cp.spans)
        assert cp.network_s > 0.0  # the path crossed the wire

    def test_empty_timeline(self):
        cp = critical_path(TraceRecorder().timeline())
        assert cp.spans == [] and cp.coverage == 1.0


class TestRollup:
    def test_shape_and_json_safety(self):
        def prog(comm):
            comm.trace_compute("fft", 1e6)
            comm.alltoall([np.zeros(32) for _ in range(comm.size)])

        agg = rollup(_traced(4, prog))
        assert {
            "ranks",
            "span_count",
            "makespan_s",
            "alltoall_epochs",
            "by_kind_s",
            "by_phase_s",
            "by_rank_s",
            "wait_s",
            "wait_fraction",
            "retransmits",
            "critical_path",
        } <= set(agg)
        assert agg["ranks"] == 4
        assert agg["alltoall_epochs"] == 1
        assert agg["by_kind_s"]["compute"] > 0.0
        json.dumps(agg)  # must be JSON-serialisable as-is

    def test_kind_seconds_sum_to_rank_time(self):
        def prog(comm):
            comm.trace_compute("w", 1e6)
            comm.barrier()

        tl = _traced(2, prog)
        agg = rollup(tl)
        total = sum(agg["by_kind_s"].values())
        per_rank = sum(sum(k.values()) for k in agg["by_rank_s"].values())
        assert total == pytest.approx(per_rank)
        # Leaves tile both ranks from 0 to their finish time.
        assert total == pytest.approx(
            sum(s.duration for s in tl.leaf_spans())
        )
