"""Tests for nonblocking-send replay, claim-time receive recording,
in-flight depth profiling, and stall attribution on the critical path."""

import numpy as np

from repro.simmpi import run_spmd
from repro.trace import (
    TraceCostModel,
    TraceRecorder,
    critical_path,
    inflight_profile,
    rollup,
)

KB = 1024


def _wire_heavy() -> TraceCostModel:
    """A cost model where communication dominates compute."""
    from repro.cluster.topology import FatTree

    return TraceCostModel(
        fabric=FatTree(link_gbit=0.01, taper=1.0, alltoall_efficiency=1.0),
        latency_s=1e-4,
    )


def _pair(send_kind: str, cost: TraceCostModel):
    """Rank 0 sends 64 KB then computes; rank 1 receives. Returns timeline."""
    rec = TraceRecorder()
    getattr(rec, f"record_{send_kind}")("ph", 0, 1, 0, 64 * KB)
    rec.record_compute("ph", 0, "work", 1e8)
    rec.record_recv("ph", 0, 1, 0, 64 * KB)
    return rec.timeline(cost)


class TestIsendReplay:
    def test_post_costs_only_post_overhead(self):
        cost = _wire_heavy()
        tl = _pair("isend", cost)
        (post,) = [s for s in tl.spans if s.kind == "isend"]
        assert post.duration == cost.post_overhead_s
        assert post.duration < cost.wire_time(64 * KB)

    def test_wire_time_overlaps_posters_compute(self):
        """The sender's compute starts at post end under isend, but only
        after the full wire time under a blocking send."""
        cost = _wire_heavy()
        tl_i = _pair("isend", cost)
        tl_b = _pair("send", cost)
        comp_i = [s for s in tl_i.spans if s.kind == "compute"][0]
        comp_b = [s for s in tl_b.spans if s.kind == "compute"][0]
        assert comp_i.t0 < comp_b.t0
        assert tl_i.makespan < tl_b.makespan

    def test_nic_serialises_back_to_back_isends(self):
        """Two isends on one NIC: the second message cannot start its
        wire time before the first finishes, so the receiver observes
        the second arrival a full wire time after the first."""
        cost = _wire_heavy()
        rec = TraceRecorder()
        rec.record_isend("ph", 0, 1, 0, 64 * KB)
        rec.record_isend("ph", 0, 1, 0, 64 * KB)
        rec.record_recv("ph", 0, 1, 0, 64 * KB)
        rec.record_recv("ph", 0, 1, 0, 64 * KB)
        tl = rec.timeline(cost)
        r1, r2 = [s for s in tl.spans if s.kind == "recv"]
        wire = cost.wire_time(64 * KB)
        assert r2.t0 - r1.t0 >= wire * 0.999

    def test_blocking_send_occupies_the_nic(self):
        """An isend posted after a blocking send queues behind its wire
        time rather than departing immediately."""
        cost = _wire_heavy()
        rec = TraceRecorder()
        rec.record_send("ph", 0, 1, 0, 64 * KB)
        rec.record_isend("ph", 0, 1, 1, 64 * KB)
        rec.record_recv("ph", 0, 1, 1, 64 * KB)
        tl = rec.timeline(cost)
        (recv,) = [s for s in tl.spans if s.kind == "recv"]
        # Arrival >= two wire times + latency (serial NIC), not one.
        assert recv.t0 >= 2 * cost.wire_time(64 * KB) + cost.latency_s - 1e-12

    def test_isend_matches_recv_ordinals_with_sends(self):
        """isend and send share the per-channel ordinal family, so a
        mixed stream still pairs the receiver's k-th recv with the
        channel's k-th logical send."""
        rec = TraceRecorder()
        rec.record_send("ph", 0, 1, 0, KB)
        rec.record_isend("ph", 0, 1, 0, 2 * KB)
        rec.record_recv("ph", 0, 1, 0, KB)
        rec.record_recv("ph", 0, 1, 0, 2 * KB)
        tl = rec.timeline()
        by_uid = tl.by_uid()
        recvs = [s for s in tl.spans if s.kind == "recv"]
        kinds = [by_uid[s.cause].kind for s in recvs]
        assert kinds == ["send", "isend"]


class TestClaimTimeRecording:
    def test_recv_recorded_at_wait_not_arrival(self):
        """The payload provably arrives before the receiver's compute
        (a later token is already in hand), yet the recv lands on the
        timeline at the wait — the program's true blocking point."""

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(512), dest=1, tag=0)  # payload
                comm.send("token", dest=1, tag=1)  # proves arrival
                return None
            req = comm.irecv(source=0, tag=0)
            comm.recv(source=0, tag=1)  # token: payload is in the channel
            comm.trace_compute("busy", 1e8)
            req.wait()
            return None

        rec = TraceRecorder()
        run_spmd(2, prog, trace=rec)
        tl = rec.timeline()
        busy = [s for s in tl.spans if s.kind == "compute" and s.rank == 1][0]
        # tag isn't on Span; identify the payload recv as the LAST recv.
        last_recv = max(
            (s for s in tl.spans if s.kind == "recv" and s.rank == 1),
            key=lambda s: s.t0,
        )
        assert last_recv.t0 >= busy.t1 - 1e-12


class TestInflightProfile:
    def test_depth_counts_overlapping_messages(self):
        cost = _wire_heavy()
        rec = TraceRecorder()
        rec.record_isend("ph", 0, 1, 0, 64 * KB)
        rec.record_isend("ph", 0, 1, 0, 64 * KB)
        rec.record_recv("ph", 0, 1, 0, 64 * KB)
        rec.record_recv("ph", 0, 1, 0, 64 * KB)
        prof = inflight_profile(rec.timeline(cost))
        assert prof["ph"]["messages"] == 2
        # Both posted before either is claimed: depth 2 is reached.
        assert prof["ph"]["max_depth"] == 2
        assert set(prof["ph"]["time_at_depth_s"]) <= {"1", "2"}
        assert all(isinstance(k, str) for k in prof["ph"]["time_at_depth_s"])

    def test_back_to_back_blocking_sends_stay_depth_one(self):
        """With zero latency the second send departs exactly when the
        first recv completes: the tie must NOT count as depth 2."""
        cost = TraceCostModel(latency_s=0.0, delivery_s=0.0)
        rec = TraceRecorder()
        rec.record_send("ph", 0, 1, 0, KB)
        rec.record_recv("ph", 0, 1, 0, KB)
        rec.record_send("ph", 0, 1, 0, KB)
        rec.record_recv("ph", 0, 1, 0, KB)
        prof = inflight_profile(rec.timeline(cost))
        assert prof["ph"]["max_depth"] == 1

    def test_empty_timeline(self):
        assert inflight_profile(TraceRecorder().timeline()) == {}


class TestStallAttribution:
    def test_bridged_wait_charged_to_waiting_phase(self):
        """critical_path bridges a caused wait out of the span path; the
        stalled seconds must still be attributed to the wait's phase."""
        rec = TraceRecorder()
        rec.record_compute("warmup", 0, "slow", 1e9)
        rec.record_send("exchange", 0, 1, 0, KB)
        rec.record_recv("exchange", 0, 1, 0, KB)
        cp = critical_path(rec.timeline())
        stall = cp.wait_by_phase_s()
        assert stall.get("exchange", 0.0) > 0.0
        assert sum(cp.bridged_wait_s.values()) > 0.0

    def test_blocking_send_counts_as_stall(self):
        """A synchronous send's wire time is stalled-in-communication
        time for the sending rank, even though no wait span exists."""
        cost = _wire_heavy()
        rec = TraceRecorder()
        rec.record_send("exchange", 0, 1, 0, 1024 * KB)
        rec.record_recv("exchange", 0, 1, 0, 1024 * KB)
        stall = critical_path(rec.timeline(cost)).wait_by_phase_s()
        assert stall.get("exchange", 0.0) >= cost.wire_time(1024 * KB) * 0.999

    def test_isend_post_not_counted_as_stall(self):
        """Posting returns immediately: a pipelined exchange that never
        blocks contributes (almost) nothing to the stall attribution."""
        cost = _wire_heavy()
        rec = TraceRecorder()
        rec.record_isend("exchange", 0, 1, 0, 1024 * KB)
        rec.record_compute("overlap", 0, "work", 1e12)
        rec.record_recv("exchange", 0, 1, 0, 1024 * KB)
        stall = critical_path(rec.timeline(cost)).wait_by_phase_s()
        # The compute fully hides the wire time, so the exchange phase
        # contributes (almost) nothing — unlike a blocking send, which
        # would put its whole wire time on the path.
        assert stall.get("exchange", 0.0) < 0.1 * cost.wire_time(1024 * KB)

    def test_rollup_exports_wait_by_phase(self):
        rec = TraceRecorder()
        rec.record_compute("warmup", 0, "slow", 1e8)
        rec.record_send("exchange", 0, 1, 0, KB)
        rec.record_recv("exchange", 0, 1, 0, KB)
        roll = rollup(rec.timeline())
        assert "wait_by_phase_s" in roll["critical_path"]
        assert isinstance(roll["critical_path"]["wait_by_phase_s"], dict)
