"""Unit tests for the span recorder and virtual-clock replay."""

import numpy as np
import pytest

from repro.simmpi import run_spmd
from repro.trace import SPAN_KINDS, TraceCostModel, TraceRecorder


class TestCostModel:
    def test_compute_time_uses_kind_efficiency(self):
        cost = TraceCostModel()
        flops = 1e9
        fft = cost.compute_time(flops, "fft")
        conv = cost.compute_time(flops, "conv")
        assert fft == pytest.approx(flops / (cost.node.dp_gflops * 1e9 * 0.10))
        assert conv == pytest.approx(flops / (cost.node.dp_gflops * 1e9 * 0.40))
        assert fft > conv  # FFT stages run at lower efficiency

    def test_wire_time_scales_with_bytes(self):
        cost = TraceCostModel()
        assert cost.wire_time(2000) == pytest.approx(2 * cost.wire_time(1000))
        assert cost.wire_time(0) == 0.0

    def test_retransmit_includes_nack_round_trip(self):
        cost = TraceCostModel()
        assert cost.retransmit_time(100) == pytest.approx(
            2 * cost.latency_s + cost.wire_time(100)
        )


class TestRecorderLifecycle:
    def test_attach_is_idempotent_per_world(self):
        rec = TraceRecorder()

        def prog(comm):
            rec.attach(comm.world)  # every rank attaches; must not raise
            return comm.rank

        run_spmd(4, prog, trace=rec)
        assert rec.nevents == 0  # no traced operations in this program

    def test_second_recorder_on_same_world_rejected(self):
        first, second = TraceRecorder(), TraceRecorder()

        def prog(comm):
            if comm.rank == 0:
                with pytest.raises(ValueError, match="different TraceRecorder"):
                    second.attach(comm.world)
            comm.barrier()

        run_spmd(2, prog, trace=first)

    def test_new_run_clears_events(self):
        rec = TraceRecorder()

        def prog(comm):
            comm.barrier()

        run_spmd(2, prog, trace=rec)
        assert rec.nevents > 0
        rec.new_run()
        assert rec.nevents == 0
        assert rec.timeline().spans == []

    def test_restart_traces_only_successful_attempt(self):
        from repro.simmpi import FaultPlan

        rec = TraceRecorder()
        faults = FaultPlan().kill(1, phase="work")

        def prog(comm):
            with comm.phase("work"):
                comm.barrier()
            return comm.rank

        res = run_spmd(2, prog, trace=rec, faults=faults, max_restarts=1)
        assert res.restarts == 1
        # Exactly one barrier event per rank — the killed attempt was dropped.
        tl = rec.timeline()
        barriers = [s for s in tl.spans if s.name == "barrier"]
        assert len(barriers) == 2


class TestReplay:
    def test_leaf_spans_tile_each_rank_timeline(self):
        rec = TraceRecorder()

        def prog(comm):
            comm.trace_compute("work", 1e6 * (comm.rank + 1))
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.sendrecv(np.zeros(64), dest=right, source=left)
            comm.barrier()

        run_spmd(3, prog, trace=rec)
        tl = rec.timeline()
        for rank in tl.ranks:
            leaves = tl.rank_spans(rank, leaf_only=True)
            assert leaves[0].t0 == 0.0
            for a, b in zip(leaves, leaves[1:]):
                assert b.t0 == pytest.approx(a.t1)
            assert all(s.kind in SPAN_KINDS for s in leaves)

    def test_late_receiver_gets_wait_span_with_cause(self):
        rec = TraceRecorder()

        def prog(comm):
            if comm.rank == 0:
                comm.trace_compute("slow", 1e8)  # ~3 ms of virtual compute
                comm.send(np.zeros(8), dest=1)
            else:
                comm.recv(source=0)

        run_spmd(2, prog, trace=rec)
        tl = rec.timeline()
        waits = [s for s in tl.spans if s.kind == "wait" and s.rank == 1]
        assert len(waits) == 1
        sends = [s for s in tl.spans if s.kind == "send"]
        assert waits[0].cause == sends[0].uid
        # The wait ends exactly one latency after the send completes.
        assert waits[0].t1 == pytest.approx(sends[0].t1 + tl.cost.latency_s)

    def test_fifo_channel_matching_preserves_order(self):
        rec = TraceRecorder()

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), dest=1)
                comm.send(np.zeros(1000), dest=1)
            else:
                comm.recv(source=0)
                comm.recv(source=0)

        run_spmd(2, prog, trace=rec)
        tl = rec.timeline()
        recvs = sorted(
            (s for s in tl.spans if s.kind == "recv"), key=lambda s: s.t0
        )
        assert [s.nbytes for s in recvs] == [80, 8000]

    def test_barrier_synchronises_all_ranks(self):
        rec = TraceRecorder()

        def prog(comm):
            comm.trace_compute("skewed", 1e6 * (comm.rank + 1))
            comm.barrier()
            return None

        run_spmd(3, prog, trace=rec)
        tl = rec.timeline()
        barriers = [s for s in tl.spans if s.name == "barrier"]
        assert len(barriers) == 3
        assert len({(s.t0, s.t1) for s in barriers}) == 1  # same release window
        # Ranks 0 and 1 arrived early and must show barrier waits.
        waiters = {s.rank for s in tl.spans if s.name == "barrier-wait"}
        assert waiters == {0, 1}

    def test_replay_with_alternate_cost_model_rescales(self):
        rec = TraceRecorder()

        def prog(comm):
            comm.trace_compute("work", 1e7)
            comm.barrier()

        run_spmd(2, prog, trace=rec)
        base = rec.timeline()
        slow = rec.timeline(cost=TraceCostModel(fft_efficiency=0.05))
        assert slow.makespan > base.makespan
        assert len(slow.spans) == len(base.spans)

    def test_collective_spans_bracket_their_transfers(self):
        rec = TraceRecorder()

        def prog(comm):
            return comm.alltoall([np.zeros(32) for _ in range(comm.size)])

        run_spmd(4, prog, trace=rec)
        tl = rec.timeline()
        colls = [s for s in tl.spans if s.kind == "collective"]
        assert len(colls) == 4  # one epoch marker per rank
        assert all(not s.leaf for s in colls)
        for c in colls:
            inner = [
                s
                for s in tl.spans
                if s.leaf and s.rank == c.rank and s.kind in ("send", "recv", "wait")
            ]
            assert inner, "epoch should contain transfers"
            assert all(c.t0 <= s.t0 and s.t1 <= c.t1 for s in inner)


class TestNodeAwareReplay:
    """ranks_per_node-aware replay: same-node transfers skip the NIC."""

    def test_same_node_predicate(self):
        cost = TraceCostModel(ranks_per_node=2)
        assert cost.same_node(0, 1)
        assert not cost.same_node(1, 2)
        assert TraceCostModel().same_node(3, 3)
        assert not TraceCostModel().same_node(0, 1)

    def test_recorder_learns_the_worlds_node_shape(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1 << 15), dest=1)
            else:
                comm.recv(source=0)

        rec_flat = TraceRecorder()
        run_spmd(2, body, trace=rec_flat)
        rec_node = TraceRecorder()
        run_spmd(2, body, trace=rec_node, ranks_per_node=2)
        flat = rec_flat.timeline()
        node = rec_node.timeline()
        # Identical program; the same-node replay skips the modelled
        # NIC serialisation and wire latency, so it is strictly faster.
        assert node.makespan < flat.makespan

    def test_explicit_cost_model_prices_same_node_cheap(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1 << 15), dest=1)
            else:
                comm.recv(source=0)

        rec = TraceRecorder()
        run_spmd(2, body, trace=rec, ranks_per_node=2)
        fast = rec.timeline(TraceCostModel(ranks_per_node=2, intra_node_s=1e-7))
        slow = rec.timeline(TraceCostModel(ranks_per_node=2, intra_node_s=1e-2))
        assert slow.makespan > fast.makespan
