"""Tests for the serve → VirtualTimeline mapping and its exporters.

One real server run feeds every assertion: worker lanes must tile with
compute/idle leaves (one compute span per coalesced batch), request
lanes carry non-leaf queue spans per priority class, and the standard
exporters (Chrome JSON, ASCII, rollup) consume the timeline unchanged.
"""

import json

import numpy as np
import pytest

from repro.serve import ServeConfig, TransformServer
from repro.trace import ascii_timeline, rollup, serve_timeline, write_chrome_trace


@pytest.fixture(scope="module")
def served():
    """A finished server run: (server, timeline, report)."""
    gen = np.random.default_rng(3)
    cfg = ServeConfig(
        workers=1, max_batch=16, batch_linger_s=0.02,
        default_library="numpy",
    )
    with TransformServer(cfg) as srv:
        tickets = [
            srv.submit(
                gen.standard_normal(256) + 1j * gen.standard_normal(256),
                priority=prio,
            )
            for prio in ("interactive", "batch", "interactive", "batch",
                         "best_effort", "best_effort")
        ]
        for t in tickets:
            t.result(timeout=30.0)
        report = srv.metrics_report()
    return srv, srv.timeline(), report


class TestLaneLayout:
    def test_one_compute_span_per_batch(self, served):
        srv, tl, report = served
        compute = [s for s in tl.spans if s.kind == "compute"]
        assert len(compute) == report["batches"] > 0
        assert all(s.rank < srv.config.workers for s in compute)
        assert all("batch" in s.name for s in compute)
        assert all(s.phase.startswith("execute:") for s in compute)

    def test_worker_lane_leaves_tile_without_overlap(self, served):
        _, tl, _ = served
        leaves = sorted(tl.rank_spans(0, leaf_only=True), key=lambda s: s.t0)
        assert leaves
        for prev, cur in zip(leaves, leaves[1:]):
            assert cur.t0 >= prev.t1 - 1e-12

    def test_queue_spans_are_nonleaf_on_class_lanes(self, served):
        srv, tl, report = served
        queue = [s for s in tl.spans if s.phase == "queue"]
        assert len(queue) == report["completed"] == 6
        assert all(not s.leaf for s in queue)
        assert all(s.rank >= srv.config.workers for s in queue)
        # Three priority classes were used: three request lanes.
        assert len({s.rank for s in queue}) == 3

    def test_compute_spans_carry_batch_flops_and_bytes(self, served):
        _, tl, _ = served
        compute = [s for s in tl.spans if s.kind == "compute"]
        assert all(s.flops > 0 and s.nbytes > 0 for s in compute)

    def test_times_are_relative_to_first_submission(self, served):
        _, tl, _ = served
        assert min(s.t0 for s in tl.spans) >= 0.0
        assert tl.makespan > 0.0


class TestExporters:
    def test_chrome_trace_round_trips(self, served, tmp_path):
        _, tl, report = served
        path = tmp_path / "serve.trace.json"
        write_chrome_trace(tl, str(path))
        doc = json.loads(path.read_text(encoding="utf-8"))
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(tl.spans)
        assert sum(1 for e in events if "batch" in e["name"]) >= report["batches"]

    def test_ascii_timeline_renders(self, served):
        _, tl, _ = served
        art = ascii_timeline(tl, width=60)
        assert isinstance(art, str)
        assert "#" in art  # compute glyph present on a worker lane

    def test_rollup_aggregates_the_serve_run(self, served):
        srv, tl, _ = served
        agg = rollup(tl)
        assert agg["makespan_s"] == pytest.approx(tl.makespan)
        assert agg["by_kind_s"].get("compute", 0.0) > 0.0
        assert agg["ranks"] >= srv.config.workers
        json.dumps(agg)  # JSON-safe by construction


class TestDirectConstruction:
    def test_serve_timeline_of_an_empty_log_is_empty(self):
        from repro.serve import MetricsLog

        tl = serve_timeline(MetricsLog(), workers=2)
        assert tl.spans == []
