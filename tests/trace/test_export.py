"""Tests for the Chrome trace-event exporter and the ASCII renderer."""

import io
import json

import numpy as np

from repro.simmpi import run_spmd
from repro.trace import (
    TraceRecorder,
    aggregate,
    ascii_timeline,
    chrome_trace,
    rollup,
    write_chrome_trace,
)


def _traced(nranks=4):
    rec = TraceRecorder()

    def prog(comm):
        comm.trace_compute("fft", 1e6 * (comm.rank + 1))
        comm.alltoall([np.zeros(64) for _ in range(comm.size)])
        comm.barrier()

    run_spmd(nranks, prog, trace=rec)
    return rec.timeline()


class TestChromeTrace:
    def test_event_schema(self):
        doc = chrome_trace(_traced())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["ranks"] == 4
        for ev in doc["traceEvents"]:
            assert {"ph", "pid", "tid", "name"} <= set(ev)
            assert ev["ph"] in ("M", "X")
            assert ev["pid"] == 0
            if ev["ph"] == "X":
                assert ev["ts"] >= 0.0
                assert ev["dur"] >= 0.0
                assert ev["cat"] in (
                    "compute", "send", "recv", "collective", "wait", "retransmit"
                )

    def test_one_thread_metadata_event_per_rank(self):
        doc = chrome_trace(_traced())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["tid"] for e in meta} == {0, 1, 2, 3}
        assert all(e["name"] == "thread_name" for e in meta)

    def test_timestamps_monotone_per_rank(self):
        doc = chrome_trace(_traced())
        by_tid = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] != "X":
                continue
            prev = by_tid.get(ev["tid"], -1.0)
            assert ev["ts"] >= prev  # rank_spans paints in start order
            by_tid[ev["tid"]] = ev["ts"]

    def test_deterministic_for_identical_runs(self):
        a = json.dumps(chrome_trace(_traced()), sort_keys=True)
        b = json.dumps(chrome_trace(_traced()), sort_keys=True)
        assert a == b

    def test_write_to_path_and_file_object(self, tmp_path):
        tl = _traced(2)
        path = tmp_path / "run.trace.json"
        write_chrome_trace(tl, str(path))
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        buf = io.StringIO()
        write_chrome_trace(tl, buf)
        assert on_disk == json.loads(buf.getvalue())
        assert on_disk["traceEvents"]

    def test_aggregate_matches_rollup(self):
        tl = _traced(2)
        assert aggregate(tl) == rollup(tl)


class TestAsciiTimeline:
    def test_rows_legend_and_epoch_header(self):
        art = ascii_timeline(_traced(), width=60)
        lines = art.splitlines()
        assert lines[0].lstrip().startswith("a2a")
        assert "A" in lines[0]  # the all-to-all epoch is marked
        for rank in range(4):
            assert any(line.lstrip().startswith(f"rank {rank}") for line in lines)
        assert "#" in art and ">" in art
        assert "ms virtual" in art
        assert "all-to-all epoch" in lines[-1]

    def test_empty_timeline(self):
        assert ascii_timeline(TraceRecorder().timeline()) == "(empty timeline)"
