"""End-to-end tracing of the distributed FFTs — the paper's structure
made visible on the virtual timeline, plus the bit-transparency and
export guarantees of the issue's acceptance criteria."""

import json

import numpy as np
import pytest

from repro.core import SoiPlan, snr_db
from repro.parallel import (
    soi_fft_distributed,
    split_blocks,
    transpose_fft_distributed,
)
from repro.simmpi import ChaosSchedule, TransportPolicy, run_spmd
from repro.trace import (
    TraceRecorder,
    alltoall_epochs,
    chrome_trace,
    critical_path,
    rollup,
)

N = 1 << 14
RANKS = 8


@pytest.fixture(scope="module")
def plan():
    return SoiPlan(n=N, p=8)


@pytest.fixture(scope="module")
def signal():
    g = np.random.default_rng(99)
    return g.standard_normal(N) + 1j * g.standard_normal(N)


def _run_soi(signal, plan, trace=None, **kwargs):
    blocks = split_blocks(signal, RANKS)
    return run_spmd(
        RANKS,
        lambda comm: soi_fft_distributed(comm, blocks[comm.rank], plan),
        trace=trace,
        **kwargs,
    )


def _run_transpose(signal, trace=None, **kwargs):
    blocks = split_blocks(signal, RANKS)
    return run_spmd(
        RANKS,
        lambda comm: transpose_fft_distributed(comm, blocks[comm.rank], N),
        trace=trace,
        **kwargs,
    )


class TestStructureOnTimeline:
    def test_soi_one_epoch_transpose_three(self, signal, plan):
        soi_rec, std_rec = TraceRecorder(), TraceRecorder()
        _run_soi(signal, plan, trace=soi_rec)
        _run_transpose(signal, trace=std_rec)
        assert alltoall_epochs(soi_rec.timeline()) == 1
        assert alltoall_epochs(std_rec.timeline()) == 3

    def test_traced_soi_is_still_an_fft(self, signal, plan):
        rec = TraceRecorder()
        res = _run_soi(signal, plan, trace=rec)
        assert snr_db(np.concatenate(res.values), np.fft.fft(signal)) > 280.0

    def test_critical_path_accounts_for_makespan(self, signal, plan):
        for runner in (_run_soi, _run_transpose):
            rec = TraceRecorder()
            if runner is _run_soi:
                runner(signal, plan, trace=rec)
            else:
                runner(signal, trace=rec)
            cp = critical_path(rec.timeline())
            assert cp.makespan > 0.0
            assert cp.coverage >= 0.95  # the issue's acceptance threshold

    def test_compute_spans_carry_flop_model(self, signal, plan):
        rec = TraceRecorder()
        _run_soi(signal, plan, trace=rec)
        agg = rollup(rec.timeline())
        # The three local stages all appear with nonzero modelled time.
        for phase in ("convolve", "fft-p", "fft-m"):
            assert agg["by_phase_s"][phase]["compute"] > 0.0
        # Communication phases are where the sends live.
        assert agg["by_phase_s"]["alltoall"]["send"] > 0.0
        assert agg["by_phase_s"]["halo"]["send"] > 0.0


class TestBitTransparency:
    def test_traced_run_identical_to_untraced(self, signal, plan):
        plain = _run_soi(signal, plan)
        traced = _run_soi(signal, plan, trace=TraceRecorder())
        for a, b in zip(plain.values, traced.values):
            np.testing.assert_array_equal(a, b)
        assert plain.stats.as_dict() == traced.stats.as_dict()

    def test_transparent_under_chaos_and_transport(self, signal, plan):
        def once(trace):
            return _run_soi(
                signal,
                plan,
                trace=trace,
                faults=ChaosSchedule(seed=11, p_bitflip=0.08, p_drop=0.03),
                transport=TransportPolicy(),
            )

        plain = once(None)
        rec = TraceRecorder()
        traced = once(rec)
        for a, b in zip(plain.values, traced.values):
            np.testing.assert_array_equal(a, b)
        assert plain.stats.as_dict() == traced.stats.as_dict()
        assert plain.stats.total_retransmits > 0  # chaos actually fired
        # ... and the recovery showed up on the timeline.
        assert rollup(rec.timeline())["retransmits"] == plain.stats.total_retransmits


class TestChromeExportOfRealRun:
    def test_valid_schema_and_monotone_timestamps(self, signal, plan):
        rec = TraceRecorder()
        _run_soi(signal, plan, trace=rec)
        doc = chrome_trace(rec.timeline())
        json.dumps(doc)  # serialisable
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs
        last = {}
        for ev in xs:
            assert {"ts", "dur", "name", "cat", "pid", "tid"} <= set(ev)
            assert ev["ts"] >= last.get(ev["tid"], -1.0)
            last[ev["tid"]] = ev["ts"]
        assert {e["tid"] for e in xs} == set(range(RANKS))

    def test_deterministic_under_fixed_chaos_seed(self, signal, plan):
        def traced_doc():
            rec = TraceRecorder()
            _run_soi(
                signal,
                plan,
                trace=rec,
                faults=ChaosSchedule(seed=5, p_bitflip=0.05),
                transport=TransportPolicy(),
            )
            return json.dumps(chrome_trace(rec.timeline()), sort_keys=True)

        assert traced_doc() == traced_doc()
