"""Tests for SoiPlan construction, validation and invariants."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import SoiPlan, design_window
from repro.core.windows import TauSigmaWindow


class TestDerivedSizes:
    def test_quarter_oversampling(self, full_plan):
        assert (full_plan.mu, full_plan.nu) == (5, 4)
        assert full_plan.m == 512
        assert full_plan.m_over == 640
        assert full_plan.n_over == 5120

    def test_q_chunks(self, full_plan):
        assert full_plan.q_chunks == full_plan.m // full_plan.nu
        assert full_plan.q_chunks * full_plan.mu == full_plan.m_over

    def test_halo_formula(self, full_plan):
        assert full_plan.halo == (full_plan.b - full_plan.nu) * full_plan.p

    def test_beta_half(self):
        plan = SoiPlan(n=1024, p=4, beta=0.5, window="digits6")
        assert (plan.mu, plan.nu) == (3, 2)
        assert plan.m_over == 384

    def test_beta_as_fraction(self):
        plan = SoiPlan(n=1024, p=4, beta=Fraction(1, 2), window="digits6")
        assert plan.m_over == 384


class TestValidation:
    def test_p_must_divide_n(self):
        with pytest.raises(ValueError, match="must divide"):
            SoiPlan(n=100, p=3)

    def test_nu_must_divide_m(self):
        # M = 1026/2 = 513 odd, nu = 4.
        with pytest.raises(ValueError, match="divisible by nu"):
            SoiPlan(n=1026, p=2)

    def test_stencil_must_fit(self):
        # B*P > N for the full window at tiny N.
        with pytest.raises(ValueError, match="exceeds N"):
            SoiPlan(n=256, p=8, window="full")

    def test_bare_window_needs_b(self):
        with pytest.raises(ValueError, match="explicit b"):
            SoiPlan(n=1024, p=4, window=TauSigmaWindow(0.7, 100.0))

    def test_odd_b_rejected(self):
        with pytest.raises(ValueError, match="even"):
            SoiPlan(n=1024, p=4, window=TauSigmaWindow(0.7, 100.0), b=33)

    def test_b_below_nu_rejected(self):
        with pytest.raises(ValueError, match=">= nu"):
            SoiPlan(n=1024, p=4, window=TauSigmaWindow(0.7, 100.0), b=2)

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            SoiPlan(n=0, p=1)
        with pytest.raises((ValueError, TypeError)):
            SoiPlan(n=1024, p=-1)

    def test_garbage_window_rejected(self):
        with pytest.raises(TypeError):
            SoiPlan(n=1024, p=4, window=[1, 2, 3])


class TestWindowResolution:
    def test_preset_string(self):
        plan = SoiPlan(n=2048, p=4, window="digits10")
        assert plan.b == 44
        assert plan.design is not None

    def test_float_target(self):
        plan = SoiPlan(n=2048, p=4, window=9.0)
        assert plan.design is not None
        assert plan.design.predicted_digits >= 8.5

    def test_design_object(self):
        des = design_window(8.0)
        plan = SoiPlan(n=2048, p=4, window=des)
        assert plan.design is des
        assert plan.b == des.b

    def test_bare_window_with_b(self):
        plan = SoiPlan(n=2048, p=4, window=TauSigmaWindow(0.7, 100.0), b=24)
        assert plan.design is None
        assert plan.b == 24

    def test_b_override_on_preset(self):
        plan = SoiPlan(n=4096, p=4, window="digits10", b=48)
        assert plan.b == 48


class TestCoefficientTensor:
    def test_shape(self, full_plan):
        assert full_plan.coeffs.shape == (
            full_plan.mu,
            full_plan.b,
            full_plan.p,
        )

    def test_matches_window_closed_form(self, small_plan):
        """C[r, b, p] == (1/M') w(r/M' - (b*P+p)/N) via the generic
        (less precise) evaluation path."""
        plan = small_plan
        r = np.arange(plan.mu)[:, None]
        ell = np.arange(plan.b * plan.p)[None, :]
        t = r / plan.m_over - ell / plan.n
        ref = (
            plan.ref_window.w_time(t, plan.m, plan.b) / plan.m_over
        ).reshape(plan.mu, plan.b, plan.p)
        np.testing.assert_allclose(plan.coeffs, ref, atol=1e-12)

    def test_distinct_element_count_matches_fig4(self, full_plan):
        """Fig. 4: 'The entire matrix has mu*P*B distinct elements.'"""
        assert full_plan.coeffs.size == full_plan.mu * full_plan.p * full_plan.b

    def test_row_zero_peak_near_window_center(self, full_plan):
        """Row r=0 peaks around the stencil middle (the Gaussian bump)."""
        row = np.abs(full_plan.coeffs[0].ravel())
        peak = row.argmax()
        mid = full_plan.b * full_plan.p / 2
        assert abs(peak - mid) < full_plan.p * 2

    def test_demod_vector(self, full_plan):
        assert full_plan.demod.shape == (full_plan.m,)
        assert np.all(np.abs(full_plan.demod) > 0)


class TestDescribe:
    def test_mentions_key_parameters(self, full_plan):
        text = full_plan.describe()
        assert "N=4096" in text
        assert "B=78" in text
        assert "beta=0.25" in text

    def test_segment_slice(self, full_plan):
        assert full_plan.segment_slice(0) == slice(0, 512)
        assert full_plan.segment_slice(7) == slice(3584, 4096)
        with pytest.raises(IndexError):
            full_plan.segment_slice(8)
