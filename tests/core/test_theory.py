"""Tests for the Definition-1 operators and Theorem 1 (hybrid convolution).

These are the paper's mathematical foundations: the theorem is an exact
identity (for untruncated windows), so the two sides must agree to
rounding regardless of window choice, sizes, or data.
"""

import numpy as np
import pytest

from repro.core.theory import (
    convolve_window,
    hybrid_convolution_lhs,
    hybrid_convolution_rhs,
    modulate,
    periodize,
    sample,
)
from repro.core.windows import GaussianWindow, TauSigmaWindow

WIN = TauSigmaWindow(0.72, 60.0)


def _rand(n, seed=0):
    g = np.random.default_rng(seed)
    return g.standard_normal(n) + 1j * g.standard_normal(n)


class TestSample:
    def test_samples_unit_interval(self):
        out = sample(lambda t: t * 2.0, 4)
        np.testing.assert_allclose(out, [0, 0.5, 1.0, 1.5])

    def test_length(self):
        assert sample(np.cos, 7).shape == (7,)

    def test_rejects_nonpositive(self):
        with pytest.raises((ValueError, TypeError)):
            sample(np.cos, 0)


class TestPeriodize:
    def test_shift_and_add(self):
        # Sequence: 1 at k=0 and 1 at k=5; Peri with M=5 folds them together.
        def z(idx):
            return np.where((idx == 0) | (idx == 5), 1.0, 0.0)

        out = periodize(z, 5, range(-10, 11))
        np.testing.assert_allclose(out, [2, 0, 0, 0, 0])

    def test_negative_indices_fold_correctly(self):
        def z(idx):
            return np.where(idx == -1, 3.0, 0.0)

        out = periodize(z, 4, range(-8, 8))
        np.testing.assert_allclose(out, [0, 0, 0, 3.0])


class TestModulate:
    def test_periodic_extension_of_y(self):
        y = _rand(8, 1)
        k = np.array([3, 3 + 8, 3 - 8])
        vals = modulate(y, WIN, 4, 8, k)
        # all three share y_3 but different window factors
        w = np.exp(1j * np.pi * 8 * k / 4) * WIN.h_hat((k - 2.0) / 4)
        np.testing.assert_allclose(vals, y[3] * w, rtol=1e-12)


class TestConvolveWindow:
    def test_linearity_in_x(self):
        n, m, b = 24, 6, 10
        x1, x2 = _rand(n, 2), _rand(n, 3)
        t = np.array([0.1, 0.37])
        lhs = convolve_window(2 * x1 - 1j * x2, WIN, m, b, t)
        rhs = 2 * convolve_window(x1, WIN, m, b, t) - 1j * convolve_window(
            x2, WIN, m, b, t
        )
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10)

    def test_periodicity_in_t(self):
        """x is N-periodic, so (x*w)(t+1) == (x*w)(t)."""
        n, m, b = 20, 5, 10
        x = _rand(n, 4)
        t = np.array([0.21])
        a = convolve_window(x, WIN, m, b, t)
        c = convolve_window(x, WIN, m, b, t + 1.0)
        np.testing.assert_allclose(a, c, rtol=1e-9)


class TestTheorem1:
    """F_M [ (1/M) Samp(x*w; 1/M) ] == Peri(y . w_hat; M)."""

    @pytest.mark.parametrize(
        "n,m,m_sample,b",
        [
            (32, 8, 8, 16),
            (48, 12, 15, 16),
            (60, 12, 12, 12),
            (40, 8, 10, 16),
        ],
    )
    def test_identity_tausigma(self, n, m, m_sample, b):
        x = _rand(n, n)
        lhs = hybrid_convolution_lhs(x, WIN, m, b, m_sample)
        rhs = hybrid_convolution_rhs(x, WIN, m, b, m_sample)
        scale = np.max(np.abs(rhs))
        assert np.max(np.abs(lhs - rhs)) / scale < 1e-11

    def test_identity_gaussian(self):
        win = GaussianWindow(40.0)
        x = _rand(40, 7)
        lhs = hybrid_convolution_lhs(x, win, 10, 12, 10)
        rhs = hybrid_convolution_rhs(x, win, 10, 12, 10)
        assert np.max(np.abs(lhs - rhs)) / np.max(np.abs(rhs)) < 1e-11

    def test_identity_with_oversampling(self):
        """The SOI use case: sampling length M' = (1+beta) M > M."""
        x = _rand(64, 9)
        m, m_sample = 16, 20
        lhs = hybrid_convolution_lhs(x, WIN, m, 16, m_sample)
        rhs = hybrid_convolution_rhs(x, WIN, m, 16, m_sample)
        assert np.max(np.abs(lhs - rhs)) / np.max(np.abs(rhs)) < 1e-11

    def test_segment_recovery_through_demodulation(self):
        """End-to-end Fig. 1 story at dense-math level: the first M bins
        of y are recovered from Peri(y.w_hat; M') by demodulating."""
        n, p = 64, 4
        m = n // p
        m_over = 20  # 1.25 * m
        win = TauSigmaWindow(0.93, 412.167)
        b = 78
        x = _rand(n, 11)
        y = np.fft.fft(x)
        lhs = hybrid_convolution_lhs(x, win, m, b, m_over)
        demod = win.demodulation_values(m, b)
        recovered = lhs[:m] / demod
        np.testing.assert_allclose(recovered, y[:m], rtol=0, atol=1e-8 * np.abs(y).max())
