"""Tests for the precomputed SOI workspaces and the SOI plan cache.

The workspaces (cached einsum contraction paths, the per-thread
extended-input buffer, reciprocal demodulation, segment phase tables)
are pure caching: every test here pins the invariant that they change
*where* numbers come from, never the numbers themselves — including
across the sequential/distributed split, the ``verify=True`` self-check
path and the ``trace=`` instrumentation path.
"""

import numpy as np
import pytest

from repro.core import (
    SoiPlan,
    clear_soi_plan_cache,
    soi_plan_cache_info,
    soi_plan_for,
)
from repro.core.soi import extended_input, soi_convolve, soi_fft, soi_ifft
from repro.trace import TraceRecorder


def _complex(rng, shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


def _generic_convolve(x, plan):
    """The pre-workspace construction: explicit extension + window view."""
    xe = extended_input(x, plan)
    stride = plan.nu * plan.p
    win = np.lib.stride_tricks.sliding_window_view(xe, plan.b * plan.p, axis=-1)[
        ..., ::stride, :
    ][..., : plan.q_chunks, :]
    winb = win.reshape(*xe.shape[:-1], plan.q_chunks, plan.b, plan.p)
    z = np.einsum("rbp,...qbp->...qrp", plan.coeffs, winb, optimize=True)
    return z.reshape(*xe.shape[:-1], plan.m_over, plan.p)


class TestConvolutionWorkspaces:
    def test_window_view_matches_generic_construction(self, full_plan, rng):
        x = _complex(rng, full_plan.n)
        np.testing.assert_array_equal(
            soi_convolve(x, full_plan), _generic_convolve(x, full_plan)
        )

    def test_contract_windows_t_is_bitwise_transpose(self, full_plan, rng):
        plan = full_plan
        x = np.ascontiguousarray(_complex(rng, plan.n))
        winb = plan.window_view(x, x[: plan.b * plan.p], plan.q_chunks)
        z = plan.contract_windows(winb).reshape(plan.m_over, plan.p)
        winb2 = plan.window_view(x, x[: plan.b * plan.p], plan.q_chunks)
        z_t = plan.contract_windows_t(winb2).reshape(plan.p, plan.m_over)
        np.testing.assert_array_equal(z_t, np.ascontiguousarray(z.T))

    def test_window_buffer_reused_per_thread(self, full_plan, rng):
        plan = full_plan
        x = np.ascontiguousarray(_complex(rng, plan.n))
        plan.window_view(x, x[: plan.b * plan.p], plan.q_chunks)
        # The slot is (execution context, pool): keyed on rank identity
        # inside SPMD worlds, thread identity outside.
        buf_a = plan._tls.xe[1][plan.n + plan.b * plan.p]
        plan.window_view(x, x[: plan.b * plan.p], plan.q_chunks)
        assert plan._tls.xe[1][plan.n + plan.b * plan.p] is buf_a

    def test_batched_rows_match_one_d_path(self, full_plan, rng):
        xb = _complex(rng, (3, full_plan.n))
        for backend in ("numpy", "repro"):
            batched = soi_fft(xb, full_plan, backend=backend)
            rows = np.stack(
                [soi_fft(xb[i], full_plan, backend=backend) for i in range(3)]
            )
            np.testing.assert_array_equal(batched, rows)


class TestDemodAndPhases:
    def test_demod_recip_is_reciprocal_of_demod(self, full_plan):
        np.testing.assert_array_equal(
            full_plan.demod_recip, np.reciprocal(full_plan.demod)
        )
        np.testing.assert_allclose(
            full_plan.demod * full_plan.demod_recip, 1.0, rtol=1e-15
        )
        assert not full_plan.demod_recip.flags.writeable

    def test_segment_phase_cached_and_correct(self, full_plan):
        plan = full_plan
        expected = np.exp(-2j * np.pi * 3 * np.arange(plan.p) / plan.p)
        np.testing.assert_array_equal(plan.segment_phase(3), expected)
        assert plan.segment_phase(3) is plan.segment_phase(3)
        with pytest.raises(IndexError):
            plan.segment_phase(plan.p)

    def test_forward_inverse_roundtrip(self, full_plan, rng):
        x = _complex(rng, full_plan.n)
        back = soi_ifft(soi_fft(x, full_plan), full_plan)
        np.testing.assert_allclose(back, x, atol=1e-12)


class TestSoiPlanCache:
    @pytest.fixture(autouse=True)
    def fresh(self):
        clear_soi_plan_cache()
        yield
        clear_soi_plan_cache()

    def test_same_parameters_share_one_plan(self):
        assert soi_plan_for(1024, 4) is soi_plan_for(1024, 4)
        info = soi_plan_cache_info()
        assert info["plans"] == 1
        assert info["misses"] == 1
        assert info["hits"] == 1

    def test_distinct_parameters_get_distinct_plans(self):
        assert soi_plan_for(1024, 4) is not soi_plan_for(1024, 8)

    def test_cached_plan_output_matches_fresh_plan(self, rng):
        x = _complex(rng, 2048)
        cached = soi_fft(x, soi_plan_for(2048, 4))
        fresh = soi_fft(x, SoiPlan(n=2048, p=4))
        np.testing.assert_array_equal(cached, fresh)

    def test_eviction_counter_round_trip(self, monkeypatch):
        """LRU evictions are counted and survive info() reads; clear resets."""
        import repro.core.plan as plan_mod

        monkeypatch.setattr(plan_mod, "_SOI_CACHE_MAX", 2)
        first = soi_plan_for(1024, 4)
        soi_plan_for(1024, 8)
        soi_plan_for(2048, 4)  # evicts the (1024, 4) plan
        info = soi_plan_cache_info()
        assert info["plans"] == 2
        assert info["evictions"] == 1
        assert info["misses"] == 3
        assert soi_plan_for(1024, 4) is not first  # rebuilt after eviction
        assert soi_plan_cache_info()["evictions"] == 2
        clear_soi_plan_cache()
        info = soi_plan_cache_info()
        assert info["plans"] == 0 and info["evictions"] == 0


class TestSequentialDistributedEquality:
    """All assertions route through the shared ``seq_dist`` harness
    (tests/conftest.py) — the invariant is stated in one place."""

    CASES = [(4096, 8, 4), (8192, 4, 4), (8192, 8, 2)]

    @pytest.mark.parametrize("n,p,nranks", CASES)
    @pytest.mark.parametrize("backend", ["numpy", "repro"])
    def test_dist_bitwise_equals_sequential(self, seq_dist, n, p, nranks, backend, rng):
        plan = soi_plan_for(n, p)
        x = _complex(rng, n)
        seq_dist.assert_bitwise_vs_sequential(x, plan, nranks, backend=backend)

    @pytest.mark.parametrize("backend", ["numpy", "repro"])
    def test_verify_path_is_bit_transparent(self, seq_dist, backend, rng):
        plan = soi_plan_for(4096, 8)
        x = _complex(rng, 4096)
        seq_dist.assert_bitwise_vs_sequential(
            x, plan, 4, backend=backend, verify=True
        )

    @pytest.mark.parametrize("backend", ["numpy", "repro"])
    def test_trace_path_is_bit_transparent(self, seq_dist, backend, rng):
        plan = soi_plan_for(4096, 8)
        x = _complex(rng, 4096)
        rec = TraceRecorder()
        seq_dist.assert_bitwise_vs_sequential(
            x, plan, 4, backend=backend, run_kwargs={"trace": rec}
        )
        assert rec.timeline().spans  # the trace actually recorded work

    def test_inverse_dist_bitwise_equals_sequential_inverse(self, seq_dist, rng):
        plan = soi_plan_for(4096, 8)
        x = _complex(rng, 4096)
        seq_dist.assert_bitwise_vs_sequential(
            x, plan, 4, backend="repro", inverse=True
        )
