"""Tests for the SOI extensions: inverse, batched, and 2-D transforms."""

import numpy as np
import pytest

from repro.bench.workloads import random_complex
from repro.core import SoiPlan, snr_db, soi_fft, soi_fft2, soi_ifft


@pytest.fixture(scope="module")
def plan10():
    return SoiPlan(n=1024, p=4, window="digits10")


class TestSoiIfft:
    def test_matches_numpy_ifft(self, full_plan):
        x = random_complex(full_plan.n, 31)
        assert snr_db(soi_ifft(x, full_plan), np.fft.ifft(x)) > 280.0

    def test_roundtrip(self, full_plan):
        x = random_complex(full_plan.n, 32)
        assert snr_db(soi_ifft(soi_fft(x, full_plan), full_plan), x) > 275.0

    def test_scaling_convention(self, plan10):
        """ifft(fft(delta)) recovers the delta with 1/N scaling."""
        x = np.zeros(plan10.n, dtype=complex)
        x[7] = 1.0
        out = soi_ifft(soi_fft(x, plan10), plan10)
        assert abs(out[7] - 1.0) < 1e-9
        assert np.max(np.abs(np.delete(out, 7))) < 1e-9

    def test_accuracy_follows_window(self, plan10):
        x = random_complex(plan10.n, 33)
        s = snr_db(soi_ifft(x, plan10), np.fft.ifft(x))
        assert 180.0 < s


class TestBatchedSoi:
    def test_matches_per_row(self, plan10):
        xb = np.stack([random_complex(plan10.n, 40 + i) for i in range(3)])
        full = soi_fft(xb, plan10)
        for i in range(3):
            np.testing.assert_array_equal(full[i], soi_fft(xb[i], plan10))

    def test_3d_batch(self, plan10):
        xb = random_complex(4 * plan10.n, 44).reshape(2, 2, plan10.n)
        out = soi_fft(xb, plan10)
        assert out.shape == (2, 2, plan10.n)
        np.testing.assert_array_equal(out[1, 0], soi_fft(xb[1, 0], plan10))

    def test_batched_accuracy(self, plan10):
        xb = np.stack([random_complex(plan10.n, 50 + i) for i in range(4)])
        assert snr_db(soi_fft(xb, plan10), np.fft.fft(xb, axis=-1)) > 190.0

    def test_wrong_last_axis(self, plan10):
        with pytest.raises(ValueError, match="last axis"):
            soi_fft(np.zeros((3, 100), dtype=complex), plan10)


class TestSoiFft2:
    def test_square_matches_numpy(self, plan10):
        x = random_complex(plan10.n * plan10.n, 60).reshape(plan10.n, plan10.n)
        assert snr_db(soi_fft2(x, plan10), np.fft.fft2(x)) > 185.0

    def test_rectangular(self):
        pr = SoiPlan(n=1024, p=4, window="digits8")
        pc = SoiPlan(n=512, p=4, window="digits8")
        x = random_complex(512 * 1024, 61).reshape(512, 1024)
        assert snr_db(soi_fft2(x, pr, pc), np.fft.fft2(x)) > 150.0

    def test_separable_structure(self, plan10):
        """fft2 of an outer product is the outer product of ffts."""
        u = random_complex(plan10.n, 62)
        v = random_complex(plan10.n, 63)
        x = np.outer(u, v)
        y = soi_fft2(x, plan10)
        ref = np.outer(np.fft.fft(u), np.fft.fft(v))
        assert snr_db(y, ref) > 185.0

    def test_shape_validation(self, plan10):
        with pytest.raises(ValueError, match="expected shape"):
            soi_fft2(np.zeros((10, plan10.n), dtype=complex), plan10)
