"""Tests for the dense reference factorisations (Sections 3, 5, 8)."""

import numpy as np
import pytest

from repro.bench.workloads import random_complex
from repro.core import SoiPlan
from repro.core.matrices import (
    dense_c0_matrix,
    dense_soi_operator,
    dense_w_matrix,
    exact_compact_fft,
    exact_compact_w_matrix,
    kron_identity_apply,
    stride_permutation_indices,
    stride_permutation_matrix,
)
from repro.core.soi import soi_convolve, soi_fft
from repro.dft.naive import dft_matrix


class TestStridePermutation:
    def test_definition(self):
        """w[k + j*(n/ell)] = v[j + k*ell] (Section 5)."""
        ell, n = 3, 12
        idx = stride_permutation_indices(ell, n)
        v = np.arange(n)
        w = v[idx]
        for j in range(ell):
            for k in range(n // ell):
                assert w[k + j * (n // ell)] == v[j + k * ell]

    def test_is_bijection(self):
        idx = stride_permutation_indices(4, 20)
        assert sorted(idx) == list(range(20))

    def test_inverse_pair(self):
        """P^{ell,n} and P^{n/ell,n} are inverses (used in Section 5)."""
        ell, n = 5, 30
        a = stride_permutation_indices(ell, n)
        b = stride_permutation_indices(n // ell, n)
        v = np.arange(n)
        np.testing.assert_array_equal(v[a][b], v)

    def test_matrix_matches_indices(self):
        ell, n = 2, 8
        mat = stride_permutation_matrix(ell, n)
        idx = stride_permutation_indices(ell, n)
        v = np.arange(n, dtype=float)
        np.testing.assert_array_equal(mat @ v, v[idx])

    def test_matrix_is_orthogonal(self):
        mat = stride_permutation_matrix(3, 12)
        np.testing.assert_allclose(mat @ mat.T, np.eye(12))

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            stride_permutation_indices(5, 12)


class TestKronApply:
    def test_matches_dense_kron(self, rng):
        a = rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3))
        x = rng.standard_normal(12) + 1j * rng.standard_normal(12)
        expected = np.kron(np.eye(4), a) @ x
        np.testing.assert_allclose(kron_identity_apply(a, x, 4), expected, atol=1e-12)

    def test_size_mismatch(self, rng):
        with pytest.raises(ValueError):
            kron_identity_apply(np.eye(3), np.zeros(10), 4)


class TestDenseW:
    def test_matches_fast_convolution(self, small_plan):
        x = random_complex(small_plan.n, 21)
        w = dense_w_matrix(small_plan)
        z_dense = (w @ x).reshape(small_plan.m_over, small_plan.p)
        np.testing.assert_allclose(z_dense, soi_convolve(x, small_plan), atol=1e-13)

    def test_block_sparsity(self, small_plan):
        """Each block-row has at most B*P nonzeros (Fig. 4)."""
        w = dense_w_matrix(small_plan)
        nnz_per_row = (np.abs(w) > 0).sum(axis=1)
        assert nnz_per_row.max() <= small_plan.b * small_plan.p

    def test_c0_matches_w_first_block_rows(self, small_plan):
        """The dense C0 (Eq. 4 with periodic images) agrees with the
        (I_M' x F_P)-factored W on the unmodulated path: summing W's
        block rows over p reproduces C0's rows."""
        plan = small_plan
        c0 = dense_c0_matrix(plan)
        w = dense_w_matrix(plan)
        x = random_complex(plan.n, 22)
        # segment 0: x~_j = sum_p z[j, p].  C0 here is UNtruncated, so the
        # two agree only to the plan's truncation level (digits6 window).
        z = (w @ x).reshape(plan.m_over, plan.p)
        np.testing.assert_allclose(z.sum(axis=1), c0 @ x, atol=1e-6)


class TestDenseSoiOperator:
    def test_approximates_dft_matrix(self, small_plan):
        """Eq. 6 as a matrix identity: the assembled operator is F_N up
        to the window's error budget (digits6 => ~1e-5 relative)."""
        op = dense_soi_operator(small_plan)
        f = dft_matrix(small_plan.n)
        rel = np.max(np.abs(op - f)) / np.max(np.abs(f))
        assert rel < 1e-4

    def test_matches_fast_pipeline(self, small_plan):
        x = random_complex(small_plan.n, 23)
        np.testing.assert_allclose(
            dense_soi_operator(small_plan) @ x,
            soi_fft(x, small_plan),
            atol=1e-8,
        )

    def test_higher_accuracy_window_tightens_operator(self):
        plan6 = SoiPlan(n=256, p=4, window="digits6")
        plan10 = SoiPlan(n=512, p=4, window="digits10")
        f6 = dft_matrix(plan6.n)
        f10 = dft_matrix(plan10.n)
        rel6 = np.max(np.abs(dense_soi_operator(plan6) - f6)) / plan6.n
        rel10 = np.max(np.abs(dense_soi_operator(plan10) - f10)) / plan10.n
        assert rel10 < rel6


class TestExactCompactWindow:
    """Section 8: the compact window makes the factorisation EXACT —
    this is the framework's rederivation of Edelman et al. [14]."""

    @pytest.mark.parametrize("n,p", [(24, 4), (36, 6), (64, 8), (60, 4), (16, 16)])
    def test_exact_fft(self, n, p):
        x = random_complex(n, n + p)
        y = exact_compact_fft(x, p)
        np.testing.assert_allclose(y, np.fft.fft(x), atol=1e-10 * n)

    def test_w_matrix_is_dense(self):
        """The compact window's W is dense — the reason [14] needed FMM
        and the paper prefers smooth windows (Section 8)."""
        w = exact_compact_w_matrix(24, 4)
        fraction_nonzero = np.mean(np.abs(w) > 1e-14)
        # Columns k = 0 (mod P) are structurally sparse (the geometric
        # sum vanishes there); every other column is fully dense — no
        # B-sparse structure exists, unlike the smooth-window W.
        assert fraction_nonzero > 0.5

    def test_p_equal_one_degenerates_to_identity_pipeline(self):
        x = random_complex(12, 3)
        np.testing.assert_allclose(exact_compact_fft(x, 1), np.fft.fft(x), atol=1e-11)

    def test_divisibility(self):
        with pytest.raises(ValueError):
            exact_compact_fft(np.zeros(10, dtype=complex), 4)
