"""Tests for the Kaiser-Bessel compact-support window (Section 8 class)."""

import numpy as np
import pytest

from repro.bench.workloads import random_complex
from repro.core import SoiPlan, snr_db, soi_fft
from repro.core.windows import KaiserBesselWindow

KB = KaiserBesselWindow(alpha=30.0, half_width=0.75)


class TestFrequencyProfile:
    def test_compact_support(self):
        """Exactly zero outside |u| <= half_width — the Section-8 class
        that 'can eliminate aliasing error completely'."""
        u = np.array([0.7501, 1.0, 5.0, -0.76])
        np.testing.assert_array_equal(KB.h_hat(u), 0.0)

    def test_positive_inside(self):
        u = np.linspace(-0.74, 0.74, 101)
        assert np.all(KB.h_hat(u) > 0)

    def test_normalised_peak(self):
        assert KB.h_hat(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_even(self):
        u = np.linspace(0, 0.74, 40)
        np.testing.assert_allclose(KB.h_hat(u), KB.h_hat(-u), rtol=1e-13)


class TestFourierPair:
    @pytest.mark.parametrize("t", [0.0, 0.5, 2.0, 5.0, 9.3])
    def test_closed_form_matches_quadrature(self, t):
        u = np.linspace(-0.76, 0.76, 12801)
        du = u[1] - u[0]
        integral = float(np.sum(KB.h_hat(u) * np.cos(2 * np.pi * u * t)) * du)
        closed = float(KB.h_time(np.array([t]))[0])
        assert closed == pytest.approx(integral, abs=1e-7)

    def test_branch_continuity(self):
        """sinh/sqrt and sin/sqrt branches must join smoothly at z=alpha."""
        t_star = KB.alpha / (2 * np.pi * KB.half_width)
        eps = 1e-6
        left = float(KB.h_time(np.array([t_star - eps]))[0])
        right = float(KB.h_time(np.array([t_star + eps]))[0])
        assert left == pytest.approx(right, rel=1e-4)


class TestDesignMetrics:
    def test_zero_alias_when_support_fits(self):
        assert KB.alias_error(0.25) == 0.0
        assert KB.alias_error_pointwise(0.25) == 0.0

    def test_nonzero_alias_when_support_exceeds(self):
        wide = KaiserBesselWindow(alpha=30.0, half_width=0.9)
        assert wide.alias_error_pointwise(0.25) > 0.0

    def test_kappa_grows_with_alpha(self):
        k1 = KaiserBesselWindow(10.0, 0.75).kappa()
        k2 = KaiserBesselWindow(30.0, 0.75).kappa()
        assert k2 > k1 > 1.0

    def test_truncation_width_shrinks_with_eps(self):
        assert KB.truncation_width(1e-6) < KB.truncation_width(1e-13)

    def test_validation(self):
        with pytest.raises(ValueError):
            KaiserBesselWindow(0.0, 0.75)
        with pytest.raises(ValueError):
            KaiserBesselWindow(10.0, 0.4)


class TestKbInSoi:
    def test_end_to_end_accuracy(self):
        plan = SoiPlan(n=4096, p=4, window=KB, b=40)
        x = random_complex(4096, 70)
        assert snr_db(soi_fft(x, plan), np.fft.fft(x)) > 170.0

    def test_moderate_alpha_balances_kappa(self):
        """Lower alpha trades time-decay (hence accuracy) for a tamer
        kappa; the slow 1/t tail makes truncation the limiting term, so
        the achievable digits track alpha."""
        kb = KaiserBesselWindow(alpha=18.0, half_width=0.75)
        plan = SoiPlan(n=4096, p=4, window=kb, b=24)
        x = random_complex(4096, 71)
        assert snr_db(soi_fft(x, plan), np.fft.fft(x)) > 110.0

    def test_accuracy_grows_with_alpha(self):
        x = random_complex(4096, 72)
        snrs = []
        for alpha in (16.0, 24.0, 30.0):
            kb = KaiserBesselWindow(alpha=alpha, half_width=0.75)
            plan = SoiPlan(n=4096, p=4, window=kb, b=40)
            snrs.append(snr_db(soi_fft(x, plan), np.fft.fft(x)))
        assert snrs == sorted(snrs)
