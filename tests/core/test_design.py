"""Tests for window design search and the frozen presets."""

import pytest

from repro.core.design import (
    NAMED_PRESETS,
    WindowDesign,
    design_window,
    named_window,
    preset_design,
)
from repro.core.windows import TauSigmaWindow


class TestDesignWindow:
    def test_returns_design(self):
        des = design_window(10.0)
        assert isinstance(des, WindowDesign)
        assert isinstance(des.window, TauSigmaWindow)

    def test_b_shrinks_as_accuracy_relaxes(self):
        """The Fig. 7 premise: lower accuracy => smaller stencil B."""
        bs = [design_window(d).b for d in (14.0, 12.0, 10.0, 8.0)]
        assert bs == sorted(bs, reverse=True)
        assert bs[0] > bs[-1]

    def test_predicted_digits_meet_target(self):
        for d in (12.0, 8.0):
            des = design_window(d)
            assert des.predicted_digits >= d - 0.25

    def test_kappa_respects_cap(self):
        des = design_window(10.0, kappa_max=50.0)
        assert des.kappa <= 50.0

    def test_full_accuracy_matches_paper_operating_point(self):
        """Paper Section 7.2: B = 72 at beta = 1/4 for ~14.5 digits
        (290 dB).  Our search lands within a few blocks of that."""
        des = design_window(14.5)
        assert 60 <= des.b <= 96
        assert des.kappa < 50

    def test_larger_beta_needs_smaller_b(self):
        b_quarter = design_window(12.0, beta=0.25).b
        b_half = design_window(12.0, beta=0.5).b
        assert b_half <= b_quarter

    def test_rejects_bad_targets(self):
        with pytest.raises(ValueError):
            design_window(-1.0)
        with pytest.raises(ValueError):
            design_window(17.5)  # beyond double precision

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            design_window(10.0, beta=0.0)
        with pytest.raises(ValueError):
            design_window(10.0, beta=2.0)

    def test_snr_property(self):
        des = design_window(10.0)
        assert des.predicted_snr_db == pytest.approx(20.0 * des.predicted_digits)


class TestPresets:
    def test_all_presets_resolve(self):
        for name in NAMED_PRESETS:
            des = preset_design(name)
            assert des.b >= 2

    def test_preset_cache(self):
        assert preset_design("full") is preset_design("full")

    def test_named_window_returns_window(self):
        assert isinstance(named_window("digits10"), TauSigmaWindow)

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="available"):
            preset_design("digits42")

    def test_full_preset_b(self):
        assert preset_design("full").b == 78

    def test_preset_ladder_monotone_in_b(self):
        order = ["full", "digits14", "digits13", "digits12", "digits11", "digits10", "digits8", "digits6"]
        bs = [preset_design(n).b for n in order]
        assert bs == sorted(bs, reverse=True)

    @pytest.mark.slow
    def test_frozen_presets_match_fresh_search(self):
        """Re-run the (slow) search for two presets and compare with the
        frozen constants — guards against silent drift in the designer."""
        for name in ("digits10", "digits6"):
            digits, tau, sigma, b = NAMED_PRESETS[name]
            fresh = design_window(digits)
            assert fresh.b == b
            assert fresh.window.tau == pytest.approx(tau, rel=1e-6)
            assert fresh.window.sigma == pytest.approx(sigma, rel=1e-6)

    def test_nonstandard_beta_triggers_search(self):
        des = preset_design("digits6", beta=0.5)
        assert des.beta == 0.5
        assert des.b <= NAMED_PRESETS["digits6"][3]
