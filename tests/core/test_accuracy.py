"""Tests for SNR / digit metrics and the error budget."""

import math

import numpy as np
import pytest

from repro.core import SoiPlan
from repro.core.accuracy import (
    digits_from_snr,
    error_budget,
    relative_l2_error,
    snr_db,
    snr_from_digits,
)
from repro.core.windows import TauSigmaWindow


class TestSnrDb:
    def test_exact_match_is_inf(self):
        x = np.array([1.0, 2.0, 3.0])
        assert snr_db(x, x) == math.inf

    def test_known_ratio(self):
        ref = np.array([1.0, 0.0])
        got = np.array([1.0, 0.01])
        assert snr_db(got, ref) == pytest.approx(40.0)

    def test_20db_per_digit(self):
        ref = np.ones(100, dtype=complex)
        got = ref + 1e-6  # 6 digits
        assert snr_db(got, ref) == pytest.approx(120.0, abs=0.5)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            snr_db(np.ones(3), np.ones(4))

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            snr_db(np.ones(3), np.zeros(3))

    def test_digit_conversions_roundtrip(self):
        assert digits_from_snr(snr_from_digits(12.5)) == 12.5


class TestRelativeL2:
    def test_zero_for_match(self):
        x = np.arange(5, dtype=float)
        assert relative_l2_error(x, x) == 0.0

    def test_known_value(self):
        assert relative_l2_error(np.array([1.1]), np.array([1.0])) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_l2_error(np.ones(2), np.zeros(2))


class TestErrorBudget:
    def test_budget_fields(self, full_plan):
        budget = error_budget(full_plan)
        for key in ("kappa", "eps_fft", "eps_alias", "eps_trunc", "modelled_digits"):
            assert key in budget

    def test_budget_predicts_at_most_measured(self, full_plan):
        """The budget is a worst-case bound: measured accuracy must be
        at least as good (checked against the known 288 dB from
        test_soi)."""
        budget = error_budget(full_plan)
        assert budget["modelled_digits"] <= 15.0
        assert budget["modelled_digits"] >= 10.0

    def test_budget_needs_design(self):
        plan = SoiPlan(n=1024, p=4, window=TauSigmaWindow(0.7, 100.0), b=24)
        with pytest.raises(ValueError, match="bare window"):
            error_budget(plan)

    def test_snr_consistency(self, full_plan):
        budget = error_budget(full_plan)
        assert budget["modelled_snr_db"] == pytest.approx(
            20.0 * budget["modelled_digits"]
        )
