"""Tests for the window-function families (Section 4 / Eq. 2)."""

import math

import numpy as np
import pytest

from repro.core.windows import GaussianWindow, TauSigmaWindow, window_from_spec

FULL = TauSigmaWindow(0.93, 412.167)  # the frozen "full" preset window


class TestTauSigmaFrequencyProfile:
    def test_positive_on_passband(self):
        u = np.linspace(-0.5, 0.5, 201)
        assert np.all(FULL.h_hat(u) > 0)

    def test_even_symmetry(self):
        u = np.linspace(0, 2, 50)
        np.testing.assert_allclose(FULL.h_hat(u), FULL.h_hat(-u), rtol=1e-12)

    def test_peak_is_at_center_plateau(self):
        # H_hat has a flat top around 0 (smoothed rect); the centre value
        # must be within rounding of the global max.
        u = np.linspace(-1, 1, 401)
        vals = FULL.h_hat(u)
        assert FULL.h_hat(np.array([0.0]))[0] == pytest.approx(vals.max(), rel=1e-12)

    def test_center_value_closed_form(self):
        # H_hat(0) = sqrt(pi/sigma)/tau * erf(sqrt(sigma) tau/2).
        from scipy.special import erf

        expected = (
            math.sqrt(math.pi / FULL.sigma)
            / FULL.tau
            * erf(math.sqrt(FULL.sigma) * FULL.tau / 2.0)
        )
        assert FULL.h_hat(np.array([0.0]))[0] == pytest.approx(expected, rel=1e-12)

    def test_decays_fast_in_stopband(self):
        val = float(FULL.h_hat(np.array([0.75]))[0])
        assert val < 1e-14

    def test_matches_direct_quadrature(self):
        """Closed form (erf difference) vs numerical integral of Eq. 2."""
        from scipy.integrate import quad

        win = TauSigmaWindow(0.8, 50.0)
        for u in [0.0, 0.3, 0.5, 0.9]:
            direct, _ = quad(
                lambda t: math.exp(-win.sigma * (u - t) ** 2),
                -win.tau / 2,
                win.tau / 2,
            )
            direct /= win.tau
            assert win.h_hat(np.array([u]))[0] == pytest.approx(direct, rel=1e-10)


class TestTauSigmaTimeProfile:
    def test_is_sinc_times_gaussian(self):
        win = TauSigmaWindow(0.7, 100.0)
        t = np.linspace(-5, 5, 101)
        expected = np.sinc(0.7 * t) * math.sqrt(math.pi / 100.0) * np.exp(
            -np.pi**2 * t**2 / 100.0
        )
        np.testing.assert_allclose(win.h_time(t), expected, rtol=1e-12)

    def test_fourier_pair_consistency(self):
        """H(t) must be the inverse transform of H_hat: check via a
        discretised Fourier integral."""
        win = TauSigmaWindow(0.8, 60.0)
        u = np.linspace(-6, 6, 4801)
        du = u[1] - u[0]
        for t in [0.0, 0.5, 1.3]:
            integral = np.sum(win.h_hat(u) * np.exp(2j * np.pi * u * t)) * du
            assert integral.real == pytest.approx(
                float(win.h_time(np.array([t]))[0]), abs=1e-9
            )
            assert abs(integral.imag) < 1e-9

    def test_no_underflow_warnings_far_out(self):
        t = np.array([1e3, 1e6])
        out = FULL.h_time(t)
        np.testing.assert_array_equal(out, 0.0)


class TestDesignMetrics:
    def test_kappa_at_least_one(self):
        assert FULL.kappa() >= 1.0

    def test_kappa_increases_with_sigma(self):
        k1 = TauSigmaWindow(0.8, 100.0).kappa()
        k2 = TauSigmaWindow(0.8, 400.0).kappa()
        assert k2 > k1

    def test_alias_error_decreases_with_beta(self):
        win = TauSigmaWindow(0.8, 150.0)
        assert win.alias_error(0.5) < win.alias_error(0.25) < win.alias_error(0.1)

    def test_alias_error_pointwise_decreases_with_beta(self):
        win = TauSigmaWindow(0.8, 150.0)
        assert win.alias_error_pointwise(0.5) < win.alias_error_pointwise(0.25)

    def test_alias_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            FULL.alias_error(-0.1)

    def test_truncation_width_even_and_positive(self):
        b = FULL.truncation_width(1e-16)
        assert b > 0 and b % 2 == 0

    def test_truncation_width_shrinks_with_looser_eps(self):
        assert FULL.truncation_width(1e-6) < FULL.truncation_width(1e-16)

    def test_truncation_eps_validation(self):
        with pytest.raises(ValueError):
            FULL.truncation_width(0.0)
        with pytest.raises(ValueError):
            FULL.truncation_width(1.5)

    def test_truncation_captures_mass(self):
        """Directly verify the defining integral inequality."""
        win = TauSigmaWindow(0.8, 100.0)
        eps = 1e-10
        b = win.truncation_width(eps)
        t = np.linspace(-3 * b, 3 * b, 200001)
        dt = t[1] - t[0]
        mass = np.abs(win.h_time(t))
        total = mass.sum() * dt
        outside = mass[np.abs(t) >= b / 2].sum() * dt
        assert outside <= eps * total * 1.01 + 1e-300


class TestDemodulation:
    def test_length_and_nonzero(self):
        d = FULL.demodulation_values(64, 78)
        assert d.shape == (64,)
        assert np.all(np.abs(d) > 0)

    def test_magnitude_profile_matches_h_hat(self):
        m, b = 128, 78
        d = FULL.demodulation_values(m, b)
        k = np.arange(m)
        np.testing.assert_allclose(np.abs(d), FULL.h_hat((k - m / 2) / m), rtol=1e-12)

    def test_phase_is_exact_root_of_unity(self):
        m, b = 64, 72
        d = FULL.demodulation_values(m, b)
        k = np.arange(m)
        expected_phase = np.exp(1j * np.pi * ((b * k) % (2 * m)) / m)
        np.testing.assert_allclose(d / np.abs(d), expected_phase, atol=1e-12)


class TestWTime:
    def test_support_is_one_sided(self):
        """w(t) lives essentially on t in [-B/M, 0] (Fig. 4's forward halo)."""
        m, b = 64, 24
        win = TauSigmaWindow(0.6, 60.0)
        inside = np.abs(win.w_time(np.linspace(-b / m, 0, 50), m, b))
        outside = np.abs(win.w_time(np.array([0.5, 1.0, -2.0 * b / m]), m, b))
        assert inside.max() > 1e3 * outside.max()

    def test_scaling_with_m(self):
        win = TauSigmaWindow(0.6, 60.0)
        # At the window centre t = -B/(2M), |w| = M * H(0).
        for m in [32, 128]:
            b = 16
            val = abs(win.w_time(np.array([-b / (2 * m)]), m, b)[0])
            assert val == pytest.approx(m * float(win.h_time(np.array([0.0]))[0]), rel=1e-12)


class TestGaussianWindow:
    def test_kappa_closed_form(self):
        assert GaussianWindow(40.0).kappa() == pytest.approx(math.exp(10.0))

    def test_h_hat_value(self):
        win = GaussianWindow(10.0)
        assert win.h_hat(np.array([0.5]))[0] == pytest.approx(math.exp(-2.5))

    def test_fourier_pair(self):
        win = GaussianWindow(30.0)
        u = np.linspace(-4, 4, 3201)
        du = u[1] - u[0]
        t = 0.7
        integral = np.sum(win.h_hat(u) * np.exp(2j * np.pi * u * t)) * du
        assert integral.real == pytest.approx(float(win.h_time(np.array([t]))[0]), abs=1e-9)

    def test_truncation_width(self):
        b = GaussianWindow(40.0).truncation_width(1e-12)
        assert b % 2 == 0 and 2 <= b < 60

    def test_accuracy_limitation_vs_tausigma(self):
        """Section 8: at beta=1/4 the Gaussian window cannot reach the
        kappa/alias combination the two-parameter window reaches."""
        beta = 0.25
        # Pick the Gaussian sigma that minimises (pointwise alias * 1) +
        # kappa * eps — any sigma: product of constraints bottoms out ~1e-10.
        best = min(
            GaussianWindow(s).alias_error_pointwise(beta) * GaussianWindow(s).kappa()
            for s in np.linspace(10, 120, 56)
        )
        assert best > 1e-12  # cannot reach full double precision
        # while the tuned two-parameter window can:
        ts = FULL.alias_error_pointwise(beta) * 1.0  # kappa ~ 6 handled in design
        assert ts < 1e-14

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianWindow(0.0)


class TestWindowFromSpec:
    def test_instance_passthrough(self):
        assert window_from_spec(FULL) is FULL

    def test_tuple(self):
        win = window_from_spec((0.8, 100.0))
        assert isinstance(win, TauSigmaWindow)
        assert win.tau == 0.8 and win.sigma == 100.0

    def test_preset_name(self):
        win = window_from_spec("digits10")
        assert isinstance(win, TauSigmaWindow)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            window_from_spec(42)

    def test_tau_sigma_validation(self):
        with pytest.raises(ValueError):
            TauSigmaWindow(0.0, 10.0)
        with pytest.raises(ValueError):
            TauSigmaWindow(1.0, -1.0)
