"""Tests for the complex64 SOI tier (the float32 pipeline end to end).

A ``SoiPlan(dtype=np.complex64)`` computes the whole pipeline — window
contraction, segment FFTs, demodulation — in single precision: the
coefficient and demodulation tables are evaluated in double and cast
once at plan build, buffers and twiddles follow the plan dtype, and the
distributed exchange moves half the bytes.  Accuracy is bounded by
float32 rounding (~1e-7 relative), far above the double-precision
Theorem-2 budget but exactly what a half-bandwidth wire buys.
"""

import numpy as np
import pytest

from repro.bench.workloads import random_complex
from repro.core import SoiPlan, soi_fft, soi_ifft
from repro.core.plan import clear_soi_plan_cache, soi_plan_for
from repro.parallel import soi_fft_distributed, split_blocks
from repro.simmpi import run_spmd

N = 8192
P = 8


@pytest.fixture(scope="module")
def plan64():
    return SoiPlan(n=N, p=P, dtype=np.complex64)


@pytest.fixture(scope="module")
def x64():
    return random_complex(N, seed=64).astype(np.complex64)


class TestPlanDtype:
    def test_default_is_complex128(self):
        assert SoiPlan(n=N, p=P).dtype == np.complex128

    def test_rejects_other_dtypes(self):
        with pytest.raises(ValueError, match="dtype"):
            SoiPlan(n=N, p=P, dtype=np.float32)

    def test_tables_follow_plan_dtype(self, plan64):
        assert plan64.coeffs.dtype == np.complex64
        assert plan64.demod_recip.dtype == np.complex64

    def test_cache_keys_on_dtype(self):
        clear_soi_plan_cache()
        p128 = soi_plan_for(N, P)
        p64 = soi_plan_for(N, P, dtype=np.complex64)
        assert p128 is not p64
        assert soi_plan_for(N, P, dtype=np.complex64) is p64
        assert soi_plan_for(N, P) is p128


class TestSequential:
    @pytest.mark.parametrize("backend", ["numpy", "repro"])
    def test_accuracy_within_float32_budget(self, plan64, x64, backend):
        y = soi_fft(x64, plan64, backend=backend)
        assert y.dtype == np.complex64
        ref = np.fft.fft(x64.astype(np.complex128))
        rel = np.linalg.norm(y - ref) / np.linalg.norm(ref)
        # 64 * eps32 * log2(N): same shape of bound as the exact-kernel
        # conformance rows, at single precision.
        assert rel < 64 * np.finfo(np.float32).eps * np.log2(N)

    def test_roundtrip(self, plan64, x64):
        y = soi_fft(x64, plan64, backend="repro")
        back = soi_ifft(y, plan64, backend="repro")
        assert back.dtype == np.complex64
        rel = np.linalg.norm(back - x64) / np.linalg.norm(x64)
        assert rel < 1e-5

    def test_double_plan_unchanged_by_single_tier(self, x64):
        """The c128 path must not be perturbed by the dtype plumbing."""
        plan = SoiPlan(n=N, p=P)
        y = soi_fft(x64.astype(np.complex128), plan, backend="repro")
        assert y.dtype == np.complex128


class TestDistributed:
    @pytest.mark.parametrize("backend", ["numpy", "repro"])
    @pytest.mark.parametrize("overlap", [False, True])
    def test_bitwise_equal_to_sequential(self, plan64, x64, backend, overlap):
        """The seq==dist contract holds at single precision too."""
        seq = soi_fft(x64, plan64, backend=backend)
        blocks = split_blocks(x64, 4)
        res = run_spmd(
            4,
            lambda comm: soi_fft_distributed(
                comm, blocks[comm.rank], plan64, backend=backend, overlap=overlap
            ),
        )
        dist = np.concatenate(res.values)
        assert dist.dtype == np.complex64
        assert np.array_equal(dist, seq)

    def test_alltoall_moves_half_the_bytes(self, plan64, x64):
        plan128 = SoiPlan(n=N, p=P)
        x128 = x64.astype(np.complex128)

        def bytes_for(x, plan):
            blocks = split_blocks(x, 4)
            res = run_spmd(
                4,
                lambda comm: soi_fft_distributed(comm, blocks[comm.rank], plan),
            )
            return res.stats.phase("alltoall").total_bytes

        b64 = bytes_for(x64, plan64)
        b128 = bytes_for(x128, plan128)
        assert b64 * 2 == b128

    def test_resilience_requires_double(self, plan64, x64):
        from repro.parallel import SoiResilience

        blocks = split_blocks(x64, 4)
        with pytest.raises(Exception, match="ABFT"):
            run_spmd(
                4,
                lambda comm: soi_fft_distributed(
                    comm, blocks[comm.rank], plan64,
                    resilience=SoiResilience(),
                ),
            )
