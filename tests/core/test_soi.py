"""Tests for the sequential SOI FFT — the paper's headline algorithm."""

import numpy as np
import pytest

from repro.bench.workloads import chirp_signal, multitone, random_complex
from repro.core import SoiPlan, snr_db, soi_fft, soi_segment
from repro.core.soi import extended_input, soi_convolve


class TestSoiFftAccuracy:
    def test_full_accuracy_snr_matches_paper(self, full_plan):
        """Section 7.2: double-precision SOI ~ 290 dB (one digit below
        the ~310 dB of standard FFTs)."""
        x = random_complex(full_plan.n, 1)
        s = snr_db(soi_fft(x, full_plan), np.fft.fft(x))
        assert s > 280.0

    def test_standard_fft_is_about_20db_better(self, full_plan):
        x = random_complex(full_plan.n, 2)
        soi_snr = snr_db(soi_fft(x, full_plan), np.fft.fft(x))
        # numpy vs higher-precision reference
        ref256 = np.fft.fft(x.astype(np.complex256))
        np_snr = snr_db(np.fft.fft(x), ref256)
        assert 10.0 < np_snr - soi_snr < 45.0

    @pytest.mark.parametrize("preset,min_digits", [("digits10", 9.0), ("digits6", 5.0)])
    def test_reduced_accuracy_presets(self, preset, min_digits):
        plan = SoiPlan(n=4096, p=8, window=preset)
        x = random_complex(4096, 3)
        s = snr_db(soi_fft(x, plan), np.fft.fft(x))
        assert s / 20.0 > min_digits

    def test_accuracy_ladder_is_monotone(self):
        """Fig. 7's dial: better presets give better measured SNR."""
        x = random_complex(4096, 4)
        snrs = []
        for preset in ["digits6", "digits10", "digits13", "full"]:
            plan = SoiPlan(n=4096, p=8, window=preset)
            snrs.append(snr_db(soi_fft(x, plan), np.fft.fft(x)))
        assert snrs == sorted(snrs)

    def test_multitone_exact_lines(self, full_plan):
        """Pure tones: SOI must reproduce the line spectrum with tiny
        leakage onto the exactly-zero background."""
        x = multitone(full_plan.n, [3, 100, 1000, 4000], [1.0, 2.0, 0.5, 1.5])
        y = soi_fft(x, full_plan)
        ref = np.fft.fft(x)
        assert np.max(np.abs(y - ref)) / np.max(np.abs(ref)) < 1e-12

    def test_chirp_broadband(self, full_plan):
        x = chirp_signal(full_plan.n)
        assert snr_db(soi_fft(x, full_plan), np.fft.fft(x)) > 270.0

    def test_real_input(self, full_plan):
        x = np.asarray(random_complex(full_plan.n, 5).real, dtype=complex)
        assert snr_db(soi_fft(x, full_plan), np.fft.fft(x)) > 280.0

    def test_various_shapes(self):
        """Different (N, P) splits, including P=1 (a single segment)."""
        for n, p, preset in [(1024, 1, "digits6"), (2048, 2, "digits8"), (8192, 32, "digits8")]:
            plan = SoiPlan(n=n, p=p, window=preset)
            x = random_complex(n, n)
            s = snr_db(soi_fft(x, plan), np.fft.fft(x))
            assert s / 20.0 > 4.5, (n, p, s)

    def test_beta_half(self):
        plan = SoiPlan(n=4096, p=8, beta=0.5, window="digits10")
        x = random_complex(4096, 6)
        assert snr_db(soi_fft(x, plan), np.fft.fft(x)) > 190.0


class TestSoiFftInterface:
    def test_wrong_length_rejected(self, full_plan):
        with pytest.raises(ValueError, match="4096"):
            soi_fft(np.zeros(100, dtype=complex), full_plan)

    def test_output_shape_and_dtype(self, full_plan):
        y = soi_fft(random_complex(full_plan.n, 7), full_plan)
        assert y.shape == (full_plan.n,)
        assert y.dtype == np.complex128

    def test_backends_agree(self, full_plan):
        x = random_complex(full_plan.n, 8)
        a = soi_fft(x, full_plan, backend="numpy")
        b = soi_fft(x, full_plan, backend="repro")
        assert snr_db(b, a) > 250.0

    def test_linearity(self, full_plan):
        x1, x2 = random_complex(full_plan.n, 9), random_complex(full_plan.n, 10)
        lhs = soi_fft(2.0 * x1 + 1j * x2, full_plan)
        rhs = 2.0 * soi_fft(x1, full_plan) + 1j * soi_fft(x2, full_plan)
        assert np.max(np.abs(lhs - rhs)) < 1e-9 * np.max(np.abs(rhs))

    def test_deterministic(self, full_plan):
        x = random_complex(full_plan.n, 11)
        np.testing.assert_array_equal(soi_fft(x, full_plan), soi_fft(x, full_plan))


class TestSoiConvolve:
    def test_output_shape(self, full_plan):
        z = soi_convolve(random_complex(full_plan.n, 12), full_plan)
        assert z.shape == (full_plan.m_over, full_plan.p)

    def test_row_period_structure(self, small_plan):
        """Rows repeat with period mu under a nu*P input rotation —
        the Fig. 4 block-shift structure."""
        plan = small_plan
        x = random_complex(plan.n, 13)
        z1 = soi_convolve(x, plan)
        z2 = soi_convolve(np.roll(x, -plan.nu * plan.p), plan)
        # Shifting the input back by nu*P advances the chunk index by 1:
        np.testing.assert_allclose(
            z1[plan.mu :, :], z2[: -plan.mu, :], atol=1e-12
        )

    def test_extended_input_wraps(self, small_plan):
        x = random_complex(small_plan.n, 14)
        xe = extended_input(x, small_plan)
        assert xe.size == small_plan.n + small_plan.b * small_plan.p
        np.testing.assert_array_equal(xe[small_plan.n :], x[: small_plan.b * small_plan.p])

    def test_convolution_cost_is_nprime_b(self, small_plan):
        """Structural: the einsum contracts exactly mu*B*P coefficients
        over M/nu chunks = N' * B multiply-adds."""
        plan = small_plan
        assert plan.coeffs.size * plan.q_chunks == plan.n_over * plan.b


class TestSoiSegment:
    def test_matches_full_transform_segments(self, full_plan):
        x = random_complex(full_plan.n, 15)
        y = soi_fft(x, full_plan)
        for s in [0, 3, full_plan.p - 1]:
            seg = soi_segment(x, full_plan, s)
            ref = y[full_plan.segment_slice(s)]
            assert snr_db(seg, ref) > 250.0

    def test_matches_numpy_segment(self, full_plan):
        x = random_complex(full_plan.n, 16)
        ref = np.fft.fft(x)
        seg = soi_segment(x, full_plan, 5)
        assert snr_db(seg, ref[full_plan.segment_slice(5)]) > 280.0

    def test_segment_zero_needs_no_modulation(self, full_plan):
        """Phi_0 = I: segment 0 equals the unmodulated pipeline head."""
        x = random_complex(full_plan.n, 17)
        seg = soi_segment(x, full_plan, 0)
        ref = np.fft.fft(x)[: full_plan.m]
        assert snr_db(seg, ref) > 280.0

    def test_out_of_range_segment(self, full_plan):
        with pytest.raises(IndexError):
            soi_segment(random_complex(full_plan.n, 18), full_plan, full_plan.p)

    def test_wrong_length(self, full_plan):
        with pytest.raises(ValueError):
            soi_segment(np.zeros(10, dtype=complex), full_plan, 0)
