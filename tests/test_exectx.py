"""Execution-context identity and the pools keyed on it.

The DES engine recycles a finished rank's OS thread as the vessel for a
later rank, so ``threading.get_ident()`` aliases across ranks.  These
tests pin the three layers that must survive that aliasing:

- :func:`repro.exectx.execution_context` itself (distinct per rank,
  stable per rank, thread fallback outside SPMD);
- the scratch pools in :mod:`repro.dft.stockham` and
  :meth:`repro.core.plan.SoiPlan.window_view` (no cross-context buffer
  sharing even on one OS thread);
- the happens-before/cache observers, whose rank attribution via
  :func:`repro.simmpi.runtime.current_rank` must hold under DES.
"""

import threading

import numpy as np
import pytest

from repro.check import HbTracker, ScheduleController, install_cache_observers
from repro.core.plan import SoiPlan
from repro.dft.stockham import _scratch_pool
from repro.exectx import (
    execution_context,
    reset_execution_context,
    set_execution_context,
)
from repro.simmpi import run_spmd
from repro.simmpi.runtime import current_rank


class TestExecutionContext:
    def test_thread_fallback(self):
        assert execution_context() == ("thread", threading.get_ident())

    def test_set_reset_roundtrip(self):
        before = execution_context()
        prev = set_execution_context(("world", 99, 3))
        try:
            assert execution_context() == ("world", 99, 3)
        finally:
            reset_execution_context(prev)
        assert execution_context() == before

    @pytest.mark.parametrize("engine", ["thread", "des"])
    def test_rank_identity_under_spmd(self, engine):
        """Each rank sees ("world", token, rank) and current_rank() == rank."""

        def program(comm):
            ctx = execution_context()
            assert ctx[0] == "world" and ctx[2] == comm.rank
            assert current_rank() == comm.rank
            return ctx

        res = run_spmd(8, program, engine=engine)
        assert len({c[1] for c in res.values}) == 1  # one world token
        assert [c[2] for c in res.values] == list(range(8))
        assert len(set(res.values)) == 8
        # The rank contexts died with the run: this thread is a plain
        # thread again.
        assert execution_context()[0] == "thread"

    def test_world_tokens_distinct_across_runs(self):
        def program(comm):
            return execution_context()[1]

        t1 = run_spmd(2, program).values[0]
        t2 = run_spmd(2, program).values[0]
        assert t1 != t2


class TestContextKeyedPools:
    def test_scratch_pool_distinct_per_context_on_one_thread(self):
        """Two contexts hosted by the same OS thread get disjoint pools."""
        prev = set_execution_context(("world", -1, 0))
        try:
            pool_a = _scratch_pool()
            pool_a["sentinel"] = "rank0"
            set_execution_context(("world", -1, 1))
            pool_b = _scratch_pool()
            assert pool_b is not pool_a
            assert "sentinel" not in pool_b
        finally:
            reset_execution_context(prev)

    def test_scratch_pool_stable_within_a_context(self):
        prev = set_execution_context(("world", -2, 0))
        try:
            assert _scratch_pool() is _scratch_pool()
        finally:
            reset_execution_context(prev)

    def test_window_view_buffer_survives_context_recycling(self):
        """A later context on the same thread must not scribble over an
        earlier context's still-referenced window buffer (the DES
        vessel-recycling hazard: the view aliases pooled storage)."""
        plan = SoiPlan(4096, 8)
        rng = np.random.default_rng(5)
        a = rng.standard_normal(plan.n) + 1j * rng.standard_normal(plan.n)
        b = rng.standard_normal(plan.n) + 1j * rng.standard_normal(plan.n)
        prev = set_execution_context(("world", -3, 0))
        try:
            view_a = plan.window_view(a, a[: plan.b * plan.p], plan.q_chunks)
            want = view_a.copy()
            set_execution_context(("world", -3, 1))
            plan.window_view(b, b[: plan.b * plan.p], plan.q_chunks)
            np.testing.assert_array_equal(view_a, want)
        finally:
            reset_execution_context(prev)

    def test_des_ranks_share_threads_but_not_pools(self):
        """Recycling really happens, and pools stay rank-private anyway.

        A communication-free program lets the DES engine host many ranks
        on few vessels; per-rank FFTs then exercise the scratch pool on
        aliased OS threads.
        """

        def program(comm):
            from repro.dft import fft

            pool = _scratch_pool()
            # A recycled vessel's previous rank left a marker in ITS
            # pool; finding it here would mean we inherited that pool
            # (exactly what thread-keyed pools did).
            assert "owner" not in pool
            pool["owner"] = comm.rank
            x = np.full(256, comm.rank, dtype=np.complex128)
            y = fft(x)
            # Bin 0 is the sum: any cross-rank scratch corruption that
            # escaped would break this exact identity.
            assert y[0] == 256 * comm.rank
            assert _scratch_pool() is pool  # stable for the rank's life
            assert pool["owner"] == comm.rank
            return threading.get_ident()

        res = run_spmd(64, program, engine="des")
        assert len(set(res.values)) < 64  # vessels were recycled across ranks


class TestObserverAttributionUnderDes:
    def _controller(self, hb):
        return ScheduleController(seed=0, p_hold=0.0, p_jitter=0.0, hb=hb)

    def test_race_detection_attributes_ranks_under_des(self):
        hb = HbTracker(4)

        def program(comm):
            hb.note_access("shared.counter", kind="w")
            comm.barrier()

        run_spmd(4, program, schedule=self._controller(hb), engine="des")
        report = hb.report()
        assert not report["clean"]
        assert len(report["findings"]) == 6  # every pair of 4 ranks

    def test_message_chain_orders_accesses_under_des(self):
        hb = HbTracker(2)

        def program(comm):
            if comm.rank == 0:
                hb.note_access("handoff.state", kind="w")
                comm.send(1.0, 1)
            else:
                comm.recv(0)
                hb.note_access("handoff.state", kind="w")

        run_spmd(2, program, schedule=self._controller(hb), engine="des")
        assert hb.report()["clean"]

    def test_plan_cache_observer_clean_under_des(self):
        """The real dft plan-cache accesses audit clean on DES ranks."""
        hb = HbTracker(4)
        restore = install_cache_observers(hb)
        try:

            def program(comm):
                from repro.dft import fft

                return fft(np.arange(128, dtype=np.complex128))[0]

            run_spmd(4, program, schedule=self._controller(hb), engine="des")
        finally:
            restore()
        report = hb.report()
        assert report["clean"], report["findings"]
