"""Property-based tests for the SOI pipeline invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SoiPlan, snr_db, soi_fft, soi_segment
from repro.core.soi import soi_convolve

# Reuse one plan across examples (construction is the expensive part).
PLAN = SoiPlan(n=2048, p=4, window="digits8")

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def vec(seed, n=PLAN.n):
    g = np.random.default_rng(seed)
    return g.standard_normal(n) + 1j * g.standard_normal(n)


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_soi_accuracy_for_arbitrary_data(seed):
    x = vec(seed)
    assert snr_db(soi_fft(x, PLAN), np.fft.fft(x)) > 150.0


@settings(max_examples=20, deadline=None)
@given(seed=seeds, a=st.floats(-3, 3), b=st.floats(-3, 3))
def test_soi_linearity(seed, a, b):
    x, y = vec(seed), vec(seed + 1)
    lhs = soi_fft(a * x + 1j * b * y, PLAN)
    rhs = a * soi_fft(x, PLAN) + 1j * b * soi_fft(y, PLAN)
    scale = max(float(np.max(np.abs(rhs))), 1.0)
    assert np.max(np.abs(lhs - rhs)) < 1e-9 * scale


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_convolution_linearity(seed):
    x, y = vec(seed), vec(seed + 2)
    lhs = soi_convolve(x + 2j * y, PLAN)
    rhs = soi_convolve(x, PLAN) + 2j * soi_convolve(y, PLAN)
    assert np.max(np.abs(lhs - rhs)) < 1e-10 * max(float(np.max(np.abs(rhs))), 1.0)


@settings(max_examples=15, deadline=None)
@given(seed=seeds, s=st.integers(0, PLAN.p - 1))
def test_segment_consistency(seed, s):
    """Any segment computed alone matches the full transform's slice."""
    x = vec(seed)
    seg = soi_segment(x, PLAN, s)
    full = soi_fft(x, PLAN)[PLAN.segment_slice(s)]
    assert snr_db(seg, full) > 140.0


@settings(max_examples=15, deadline=None)
@given(seed=seeds, shift=st.integers(1, PLAN.p - 1))
def test_segment_shift_identity(seed, shift):
    """Section 5: y^(s) of x equals y^(0) of Phi_s x."""
    x = vec(seed)
    omega = np.exp(-2j * np.pi * shift * np.arange(PLAN.p) / PLAN.p)
    modulated = x * np.tile(omega, PLAN.m)
    a = soi_segment(x, PLAN, shift)
    b = soi_segment(modulated, PLAN, 0)
    assert snr_db(a, b) > 200.0


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_parseval_within_window_error(seed):
    x = vec(seed)
    y = soi_fft(x, PLAN)
    lhs = float(np.sum(np.abs(y) ** 2))
    rhs = PLAN.n * float(np.sum(np.abs(x) ** 2))
    assert lhs == pytest.approx(rhs, rel=1e-7)


@settings(max_examples=10, deadline=None)
@given(seed=seeds, scale=st.floats(1e-6, 1e6))
def test_scale_invariance_of_relative_error(seed, scale):
    """Relative accuracy must not depend on input magnitude."""
    x = vec(seed)
    s1 = snr_db(soi_fft(x, PLAN), np.fft.fft(x))
    s2 = snr_db(soi_fft(scale * x, PLAN), np.fft.fft(scale * x))
    assert abs(s1 - s2) < 3.0
