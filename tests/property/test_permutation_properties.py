"""Property-based tests for stride permutations and bit reversal."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matrices import stride_permutation_indices
from repro.utils import bit_reverse_indices


@st.composite
def ell_n_pairs(draw):
    ell = draw(st.integers(1, 16))
    mult = draw(st.integers(1, 16))
    return ell, ell * mult


@settings(max_examples=60, deadline=None)
@given(pair=ell_n_pairs())
def test_stride_permutation_is_bijection(pair):
    ell, n = pair
    idx = stride_permutation_indices(ell, n)
    assert sorted(idx) == list(range(n))


@settings(max_examples=60, deadline=None)
@given(pair=ell_n_pairs())
def test_stride_permutation_inverse(pair):
    ell, n = pair
    a = stride_permutation_indices(ell, n)
    b = stride_permutation_indices(n // ell, n)
    v = np.arange(n)
    np.testing.assert_array_equal(v[a][b], v)


@settings(max_examples=60, deadline=None)
@given(pair=ell_n_pairs())
def test_stride_permutation_definition(pair):
    """w[k + j*(n/ell)] == v[j + k*ell] for all j, k (Section 5)."""
    ell, n = pair
    idx = stride_permutation_indices(ell, n)
    v = np.arange(n)
    w = v[idx]
    j = np.repeat(np.arange(ell), n // ell)
    k = np.tile(np.arange(n // ell), ell)
    np.testing.assert_array_equal(w[k + j * (n // ell)], v[j + k * ell])


@settings(max_examples=30, deadline=None)
@given(logn=st.integers(0, 12))
def test_bit_reversal_involution(logn):
    n = 1 << logn
    rev = bit_reverse_indices(n)
    np.testing.assert_array_equal(rev[rev], np.arange(n))


@settings(max_examples=30, deadline=None)
@given(logn=st.integers(1, 12))
def test_bit_reversal_is_bijection(logn):
    n = 1 << logn
    assert sorted(bit_reverse_indices(n)) == list(range(n))


@settings(max_examples=20, deadline=None)
@given(logn=st.integers(1, 10))
def test_bit_reversal_fixed_points(logn):
    """0 and n-1 (all-zeros / all-ones patterns) are always fixed."""
    n = 1 << logn
    rev = bit_reverse_indices(n)
    assert rev[0] == 0
    assert rev[n - 1] == n - 1
