"""Property-based tests for the message-passing substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import run_spmd


@settings(max_examples=15, deadline=None)
@given(nranks=st.integers(1, 6), seed=st.integers(0, 1000))
def test_alltoall_is_a_global_transpose(nranks, seed):
    """alltoall output[j][i] == input[i][j] for arbitrary payload matrix."""
    g = np.random.default_rng(seed)
    matrix = g.integers(0, 1000, size=(nranks, nranks))

    def prog(comm):
        return comm.alltoall(list(matrix[comm.rank]))

    res = run_spmd(nranks, prog)
    received = np.array(res.values)
    np.testing.assert_array_equal(received, matrix.T)


@settings(max_examples=15, deadline=None)
@given(nranks=st.integers(1, 6), seed=st.integers(0, 1000))
def test_allreduce_sum_invariant(nranks, seed):
    g = np.random.default_rng(seed)
    values = g.integers(-100, 100, size=nranks)

    def prog(comm):
        return comm.allreduce(int(values[comm.rank]))

    res = run_spmd(nranks, prog)
    assert res.values == [int(values.sum())] * nranks


@settings(max_examples=10, deadline=None)
@given(nranks=st.integers(2, 5), nbytes=st.integers(1, 4096))
def test_traffic_accounting_matches_payload(nranks, nbytes):
    """Off-node bytes of a ring exchange = nranks * payload."""

    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        return comm.sendrecv(np.zeros(nbytes, dtype=np.uint8), dest=right, source=left)

    res = run_spmd(nranks, prog)
    assert res.stats.total_offnode_bytes == nranks * nbytes


@settings(max_examples=10, deadline=None)
@given(nranks=st.integers(1, 6), root=st.integers(0, 5), seed=st.integers(0, 99))
def test_scatter_gather_roundtrip(nranks, root, seed):
    root = root % nranks
    g = np.random.default_rng(seed)
    data = [float(v) for v in g.standard_normal(nranks)]

    def prog(comm):
        item = comm.scatter(data if comm.rank == root else None, root=root)
        return comm.gather(item, root=root)

    res = run_spmd(nranks, prog)
    assert res[root] == data
