"""Property tests: tracing is bit-transparent and replay is deterministic.

The acceptance bar for the trace subsystem is that turning it on
changes NOTHING observable about a run — FFT outputs bit-identical,
traffic statistics identical — for arbitrary rank counts and seeds,
including runs where a seeded chaos schedule is actively corrupting
the wire under the reliable transport.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SoiPlan
from repro.parallel import soi_fft_distributed, split_blocks
from repro.simmpi import ChaosSchedule, TransportPolicy, run_spmd
from repro.trace import TraceRecorder, chrome_trace, rollup

# Smallest power of two whose per-rank block still fits the window halo
# at R = 8 (n=4096 would give block 512 < halo 592).
_PLAN = SoiPlan(n=8192, p=8)


def _soi(nranks, seed, trace=None, chaos_seed=None):
    g = np.random.default_rng(seed)
    x = g.standard_normal(_PLAN.n) + 1j * g.standard_normal(_PLAN.n)
    blocks = split_blocks(x, nranks)
    kwargs = {}
    if chaos_seed is not None:
        kwargs["faults"] = ChaosSchedule(seed=chaos_seed, p_bitflip=0.06, p_drop=0.02)
        kwargs["transport"] = TransportPolicy()
    return run_spmd(
        nranks,
        lambda comm: soi_fft_distributed(comm, blocks[comm.rank], _PLAN),
        trace=trace,
        **kwargs,
    )


@settings(max_examples=8, deadline=None)
@given(nranks=st.sampled_from([1, 2, 4, 8]), seed=st.integers(0, 10_000))
def test_tracing_is_bit_transparent(nranks, seed):
    plain = _soi(nranks, seed)
    traced = _soi(nranks, seed, trace=TraceRecorder())
    for a, b in zip(plain.values, traced.values):
        np.testing.assert_array_equal(a, b)
    assert plain.stats.as_dict() == traced.stats.as_dict()


@settings(max_examples=6, deadline=None)
@given(nranks=st.sampled_from([2, 4]), chaos_seed=st.integers(0, 500))
def test_tracing_transparent_under_chaos(nranks, chaos_seed):
    """Same chaos seed, fresh schedule instances: traced == untraced."""
    plain = _soi(nranks, 1, chaos_seed=chaos_seed)
    traced = _soi(nranks, 1, trace=TraceRecorder(), chaos_seed=chaos_seed)
    for a, b in zip(plain.values, traced.values):
        np.testing.assert_array_equal(a, b)
    assert plain.stats.as_dict() == traced.stats.as_dict()


@settings(max_examples=5, deadline=None)
@given(nranks=st.sampled_from([2, 4]), chaos_seed=st.integers(0, 500))
def test_timeline_deterministic_for_fixed_seed(nranks, chaos_seed):
    """Two identical chaos runs yield byte-identical exports/rollups."""

    def capture():
        rec = TraceRecorder()
        _soi(nranks, 2, trace=rec, chaos_seed=chaos_seed)
        tl = rec.timeline()
        return (
            json.dumps(chrome_trace(tl), sort_keys=True),
            json.dumps(rollup(tl), sort_keys=True),
        )

    assert capture() == capture()


@settings(max_examples=6, deadline=None)
@given(nranks=st.sampled_from([1, 2, 4, 8]), seed=st.integers(0, 10_000))
def test_rollup_invariants(nranks, seed):
    rec = TraceRecorder()
    _soi(nranks, seed, trace=rec)
    agg = rollup(rec.timeline())
    assert agg["ranks"] == nranks
    assert agg["alltoall_epochs"] == 1  # SOI: ONE global exchange, any R
    assert agg["makespan_s"] > 0.0
    assert 0.0 <= agg["wait_fraction"] < 1.0
    assert agg["critical_path"]["coverage"] >= 0.95
