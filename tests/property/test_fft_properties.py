"""Property-based tests (hypothesis) for the local FFT library.

These check the algebraic identities every DFT must satisfy on
arbitrary sizes and data: linearity, inversion, Parseval, the
shift/modulation theorems, and cross-kernel agreement.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dft import fft, fft_bluestein, fft_mixed_radix, ifft

sizes = st.integers(min_value=1, max_value=256)
pow2_sizes = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128])
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def vec(n, seed):
    g = np.random.default_rng(seed)
    return g.standard_normal(n) + 1j * g.standard_normal(n)


@settings(max_examples=60, deadline=None)
@given(n=sizes, seed=seeds)
def test_roundtrip_any_size(n, seed):
    x = vec(n, seed)
    np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(n=sizes, seed=seeds)
def test_matches_numpy_any_size(n, seed):
    x = vec(n, seed)
    np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-7 * max(n, 1))


@settings(max_examples=40, deadline=None)
@given(n=sizes, seed=seeds, a=st.floats(-5, 5), b=st.floats(-5, 5))
def test_linearity(n, seed, a, b):
    x, y = vec(n, seed), vec(n, seed + 1)
    lhs = fft(a * x + b * y)
    rhs = a * fft(x) + b * fft(y)
    np.testing.assert_allclose(lhs, rhs, atol=1e-7 * max(n, 1))


@settings(max_examples=40, deadline=None)
@given(n=sizes, seed=seeds)
def test_parseval(n, seed):
    x = vec(n, seed)
    y = fft(x)
    np.testing.assert_allclose(
        np.sum(np.abs(y) ** 2), n * np.sum(np.abs(x) ** 2), rtol=1e-9
    )


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 128), seed=seeds, shift=st.integers(0, 300))
def test_time_shift_theorem(n, seed, shift):
    x = vec(n, seed)
    y_shifted = fft(np.roll(x, shift))
    phase = np.exp(-2j * np.pi * (shift % n) * np.arange(n) / n)
    np.testing.assert_allclose(y_shifted, fft(x) * phase, atol=1e-7 * n)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 128), seed=seeds, f=st.integers(0, 300))
def test_modulation_theorem(n, seed, f):
    x = vec(n, seed)
    mod = x * np.exp(2j * np.pi * (f % n) * np.arange(n) / n)
    np.testing.assert_allclose(fft(mod), np.roll(fft(x), f % n), atol=1e-7 * n)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 200), seed=seeds)
def test_bluestein_agrees_with_mixed_radix(n, seed):
    x = vec(n, seed)
    np.testing.assert_allclose(
        fft_bluestein(x), fft_mixed_radix(x), atol=1e-7 * max(n, 1)
    )


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 128), seed=seeds)
def test_conjugate_symmetry_for_real_input(n, seed):
    g = np.random.default_rng(seed)
    x = g.standard_normal(n).astype(complex)
    y = fft(x)
    np.testing.assert_allclose(y[1:], np.conj(y[1:][::-1]), atol=1e-8 * n)


@settings(max_examples=30, deadline=None)
@given(n=pow2_sizes, batch=st.integers(1, 5), seed=seeds)
def test_batch_consistency(n, batch, seed):
    x = np.stack([vec(n, seed + i) for i in range(batch)])
    full = fft(x)
    for i in range(batch):
        np.testing.assert_array_equal(full[i], fft(x[i]))
