"""Property-based tests for the NUFFT built on the SOI window machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nufft import NufftPlan, nudft1, nufft1, nufft2

PLAN = NufftPlan(128, window="digits10")

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=25, deadline=None)
@given(t0=st.floats(0.0, 0.999999), seed=seeds)
def test_single_mass_phase_identity(t0, seed):
    """One unit mass at any t0: y_k = exp(-2*pi*i*k*t0) exactly —
    the defining property of the transform, for arbitrary offsets
    (including points far from any grid node)."""
    y = nufft1(np.array([t0]), np.array([1.0 + 0j]), PLAN)
    k = np.arange(-64, 64)
    np.testing.assert_allclose(y, np.exp(-2j * np.pi * k * t0), atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 200), seed=seeds)
def test_matches_direct_sum(n, seed):
    g = np.random.default_rng(seed)
    t = g.random(n)
    a = g.standard_normal(n) + 1j * g.standard_normal(n)
    y = nufft1(t, a, PLAN)
    ref = nudft1(t, a, PLAN.k_modes)
    scale = max(float(np.linalg.norm(ref)), 1e-30)
    assert np.linalg.norm(y - ref) / scale < 1e-8


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_translation_covariance(seed):
    """Shifting every point by s multiplies mode k by exp(-2*pi*i*k*s)."""
    g = np.random.default_rng(seed)
    t = g.random(50) * 0.5  # keep t + s inside [0, 1)
    a = g.standard_normal(50) + 1j * g.standard_normal(50)
    s = 0.25
    y0 = nufft1(t, a, PLAN)
    y1 = nufft1(t + s, a, PLAN)
    k = np.arange(-64, 64)
    np.testing.assert_allclose(y1, y0 * np.exp(-2j * np.pi * k * s), atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_adjoint_identity(seed):
    """<nufft2(c), a> == <c, nufft1(a)> for arbitrary data."""
    g = np.random.default_rng(seed)
    t = g.random(80)
    a = g.standard_normal(80) + 1j * g.standard_normal(80)
    c = g.standard_normal(128) + 1j * g.standard_normal(128)
    lhs = np.vdot(nufft2(t, c, PLAN), a)
    rhs = np.vdot(c, nufft1(t, a, PLAN))
    assert abs(lhs - rhs) < 1e-7 * max(abs(rhs), 1.0)


@settings(max_examples=15, deadline=None)
@given(seed=seeds, scale=st.floats(1e-3, 1e3))
def test_homogeneity(seed, scale):
    g = np.random.default_rng(seed)
    t = g.random(40)
    a = g.standard_normal(40) + 1j * g.standard_normal(40)
    np.testing.assert_allclose(
        nufft1(t, scale * a, PLAN), scale * nufft1(t, a, PLAN), rtol=1e-10
    )
