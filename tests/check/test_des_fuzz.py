"""Schedule fuzzing on the discrete-event engine (PR 9).

The DES scheduler's permuted message releases and start orders are the
virtual-time analogue of the thread engine's OS-scheduler chaos; every
seeded interleaving must reproduce the unperturbed reference bitwise in
outputs, traffic statistics, and trace structure.  The sweeps also pin
liveness: generously bounded operations never time out and never hang
under fuzzed DES schedules.
"""

import time

import numpy as np
import pytest

from repro.check import (
    ScheduleController,
    fuzz_distributed_soi,
    replay_interleavings,
)
from repro.simmpi import run_spmd

GUARD_S = 8.0


class TestFuzzedSoiUnderDes:
    def test_distributed_soi_deterministic_under_des_schedules(self):
        report = fuzz_distributed_soi(
            n=4096, p=8, nranks=4, schedules=6, seed="des-fuzz",
            run_kwargs={"engine": "des"},
        )
        assert report.ok, report.as_dict()["mismatches"]
        assert report.distinct_interleavings > 1

    def test_hierarchical_schedule_fuzzes_clean_under_des(self):
        report = fuzz_distributed_soi(
            n=4096, p=8, nranks=4, schedules=4, seed="des-hier",
            run_kwargs={
                "engine": "des",
                "ranks_per_node": 2,
                "alltoall_algorithm": "hierarchical",
            },
        )
        assert report.ok, report.as_dict()["mismatches"]

    def test_overlap_path_fuzzes_clean_under_des(self):
        report = fuzz_distributed_soi(
            n=4096, p=8, nranks=4, schedules=4, seed="des-overlap",
            overlap=True, run_kwargs={"engine": "des"},
        )
        assert report.ok, report.as_dict()["mismatches"]


class TestReplayInterleavingsUnderDes:
    def test_ragged_alltoall_replays_bitwise(self):
        def program(comm):
            rng = np.random.default_rng(100 + comm.rank)
            objs = [rng.standard_normal(8) for _ in range(comm.size)]
            return np.stack(comm.alltoall(objs, algorithm="hierarchical"))

        report = replay_interleavings(
            program, 8, schedules=6, seed="ragged",
            run_kwargs={"engine": "des", "ranks_per_node": 3},
        )
        assert report.ok, report.as_dict()["mismatches"]

    def test_engines_agree_under_identical_fuzz_seeds(self):
        """The same schedule seed perturbs both engines; each must still
        match its own unperturbed reference — and the references match
        each other (transitively: fuzzed DES == fuzzed threads)."""

        def program(comm):
            objs = [np.full(4, comm.rank, float) for _ in range(comm.size)]
            return np.stack(comm.alltoall(objs))

        ref = {}
        for engine in ("thread", "des"):
            rep = replay_interleavings(
                program, 4, schedules=3, seed="xengine",
                run_kwargs={"engine": engine},
            )
            assert rep.ok, (engine, rep.as_dict()["mismatches"])
            ref[engine] = run_spmd(4, program, engine=engine).values
        for a, b in zip(ref["thread"], ref["des"]):
            assert a.tobytes() == b.tobytes()


class TestLivenessSweepsUnderDes:
    @pytest.mark.parametrize("seed", range(6))
    def test_no_spurious_timeouts(self, seed):
        """Generously bounded ops complete under fuzzed DES schedules."""

        def body(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.arange(8.0) + comm.rank, right, tag=1)
            got = comm.recv(left, tag=1, timeout=GUARD_S)
            comm.barrier(timeout=GUARD_S)
            objs = [np.full(4, comm.rank) for _ in range(comm.size)]
            pieces = comm.ialltoallv(objs).wait(timeout=GUARD_S)
            return float(got[0]), [int(p[0]) for p in pieces]

        res = run_spmd(
            4, body, resilient=True, engine="des",
            schedule=ScheduleController(seed=seed), timeout=GUARD_S,
        )
        assert not res.degraded
        for rank in range(4):
            first, gathered = res.values[rank]
            assert first == (rank - 1) % 4
            assert gathered == [0, 1, 2, 3]

    @pytest.mark.parametrize("seed", range(4))
    def test_no_hangs_wall_clock_bounded(self, seed):
        """Fuzzed DES runs finish in wall time far under the virtual
        budget — held messages are always eventually released."""

        def body(comm):
            for round_ in range(3):
                sub = comm.split(color=(comm.rank + round_) % 2, key=comm.rank)
                sub.allgather(comm.rank)
                comm.barrier(timeout=GUARD_S)
            return "done"

        t0 = time.perf_counter()
        res = run_spmd(
            8, body, engine="des",
            schedule=ScheduleController(seed=f"hang/{seed}"), timeout=GUARD_S,
        )
        assert time.perf_counter() - t0 < GUARD_S
        assert res.values == ["done"] * 8
