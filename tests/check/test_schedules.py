"""Tests for the schedule fuzzer: the determinism claim under permuted
message-delivery and thread-wakeup orders.

The controller must (a) genuinely produce *different* interleavings per
seed — otherwise the fuzz proves nothing — and (b) never change what a
deterministic program computes: outputs, traffic statistics and trace
span structure must replay bit-for-bit.  It must also catch programs
that are *not* schedule-independent.
"""

import numpy as np
import pytest

from repro.check import (
    FuzzReport,
    ScheduleController,
    fuzz_distributed_soi,
    replay_interleavings,
)
from repro.simmpi import ChaosSchedule, TransportPolicy, run_spmd


def ring_program(comm):
    """Deterministic ring: every rank forwards an accumulating token."""
    token = float(comm.rank)
    for step in range(3):
        comm.send(token, (comm.rank + 1) % comm.size, tag=step)
        token += comm.recv((comm.rank - 1) % comm.size, tag=step)
    comm.barrier()
    return np.array([token])


def make_racy_program():
    """A program whose output depends on thread interleaving.

    Ranks append to an unsynchronized shared list; the observed order
    is whatever the thread schedule produced.  Exactly the bug class
    the fuzzer exists to expose (simmpi ranks are threads, so shared
    Python state is reachable by accident).
    """
    shared: list[int] = []

    def program(comm):
        shared.append(comm.rank)
        comm.barrier()  # all appends land before anyone reads
        # The same closure is replayed run after run; this run's appends
        # are the trailing size entries.
        return np.array(shared[-comm.size :])

    return program


class TestScheduleController:
    def test_start_order_is_a_seeded_permutation(self):
        orders = {tuple(ScheduleController(seed=s).start_order(6)) for s in range(8)}
        assert all(sorted(o) == list(range(6)) for o in orders)
        assert len(orders) > 1  # seeds actually vary the permutation

    def test_fingerprint_identifies_the_realized_interleaving(self):
        """The fingerprint digests the delivery log of the run that
        actually happened — a diagnostic identity, not a replayable
        schedule (seeds steer the distribution of interleavings; the
        realized one also depends on genuine thread timing)."""
        ctl = ScheduleController(seed="stable")
        ctl.new_run()
        run_spmd(4, ring_program, schedule=ctl)
        fp = ctl.fingerprint()
        assert isinstance(fp, str) and len(fp) == 24
        int(fp, 16)  # hex digest

    def test_world_scheduler_detached_after_run(self):
        ctl = ScheduleController(seed=1)
        run_spmd(2, ring_program, schedule=ctl)
        # No held messages may survive a completed run.
        assert ctl._held_total == 0


class TestReplayInterleavings:
    def test_deterministic_ring_is_bitwise_stable(self):
        report = replay_interleavings(ring_program, 4, schedules=6, seed=11)
        assert isinstance(report, FuzzReport)
        assert report.ok
        assert report.mismatches == []
        assert report.distinct_interleavings > 1

    def test_report_dict_is_json_shaped(self):
        import json

        report = replay_interleavings(ring_program, 3, schedules=3, seed=5)
        d = report.as_dict()
        json.dumps(d)
        assert d["schedules"] == 3
        assert d["deterministic"] is True
        assert len(d["fingerprints"]) == 3

    def test_racy_program_is_caught(self):
        """Shared-state append order IS schedule-dependent: the fuzzer
        permutes thread start order, so some replay must diverge."""
        report = replay_interleavings(
            make_racy_program(), 6, schedules=16, seed=0, compare_traces=False
        )
        assert not report.ok
        assert any(m.field == "outputs" for m in report.mismatches)

    def test_mismatch_records_the_offending_seed(self):
        report = replay_interleavings(
            make_racy_program(), 6, schedules=16, seed=3, compare_traces=False
        )
        bad = [m for m in report.mismatches if m.field == "outputs"]
        assert bad and all(m.schedule_seed.startswith("3/") for m in bad)


class TestDistributedSoiFuzz:
    def test_soi_is_deterministic_under_fuzzing(self):
        report = fuzz_distributed_soi(
            n=2048, p=8, nranks=4, window="digits10", schedules=5, seed=0
        )
        assert report.ok, report.as_dict()["mismatches"]
        assert report.distinct_interleavings == 5

    def test_backends_both_deterministic(self):
        for backend in ("numpy", "repro"):
            report = fuzz_distributed_soi(
                n=2048, p=8, nranks=4, window="digits10",
                backend=backend, schedules=3, seed=1,
            )
            assert report.ok, (backend, report.as_dict()["mismatches"])

    def test_composes_with_chaos_and_reliable_transport(self):
        """Schedule permutation on top of seeded wire faults: the
        reliable transport must still converge to identical results and
        identical retransmit counts under every interleaving."""
        report = replay_interleavings(
            lambda comm: _soi_block(comm),
            4,
            schedules=4,
            seed=2,
            run_kwargs={
                "faults": ChaosSchedule(seed=7, p_bitflip=0.05, p_drop=0.02),
                "transport": TransportPolicy(),
            },
        )
        assert report.ok, report.as_dict()["mismatches"]


def _soi_block(comm):
    from repro.core.plan import soi_plan_for
    from repro.parallel import soi_fft_distributed

    plan = soi_plan_for(2048, 8, window="digits10")
    gen = np.random.default_rng(99)
    x = gen.standard_normal(2048) + 1j * gen.standard_normal(2048)
    block = 2048 // comm.size
    lo = comm.rank * block
    return soi_fft_distributed(comm, x[lo : lo + block], plan)
