"""Tests for the happens-before checker: vector clocks over simmpi runs.

Three canonical shapes pin the race predicate from both sides:
unsynchronized cross-rank writes must be flagged; writes ordered by a
message chain must not; concurrent writes under one named guard must
not.  The integration test audits the real dft plan cache under a
fuzzed distributed SOI run and requires a clean bill.
"""

import numpy as np
import pytest

from repro.check import HbTracker, ScheduleController, install_cache_observers
from repro.simmpi import run_spmd


def observer_controller(hb, seed=0):
    """A pure-observer controller: wires HB hooks without perturbation."""
    return ScheduleController(seed=seed, p_hold=0.0, p_jitter=0.0, hb=hb)


class TestRacePredicate:
    def test_unsynchronized_writes_are_flagged(self):
        hb = HbTracker(4)

        def program(comm):
            hb.note_access("shared.counter", kind="w")
            comm.barrier()

        run_spmd(4, program, schedule=observer_controller(hb))
        report = hb.report()
        assert not report["clean"]
        # Every rank pair races with every other: C(4,2) findings.
        assert len(report["findings"]) == 6
        assert all(f["state"] == "shared.counter" for f in report["findings"])
        assert all(f["guards"] == ["<unguarded>"] for f in report["findings"])

    def test_message_chain_orders_the_accesses(self):
        """w(0) -> send -> recv -> w(1): happens-before, not a race."""
        hb = HbTracker(2)

        def program(comm):
            if comm.rank == 0:
                hb.note_access("handoff.state", kind="w")
                comm.send(1.0, 1)
            else:
                comm.recv(0)
                hb.note_access("handoff.state", kind="w")

        run_spmd(2, program, schedule=observer_controller(hb))
        assert hb.report()["clean"]

    def test_barrier_orders_the_accesses(self):
        """Writes on opposite sides of a barrier are ordered for all."""
        hb = HbTracker(4)

        def program(comm):
            if comm.rank == 0:
                hb.note_access("epoch.state", kind="w")
            comm.barrier()
            if comm.rank != 0:
                hb.note_access("epoch.state", kind="w")

        run_spmd(4, program, schedule=observer_controller(hb))
        report = hb.report()
        # Ranks 1..3 still race among themselves, but never with rank 0.
        assert all(0 not in f["ranks"] for f in report["findings"])

    def test_shared_named_guard_suppresses_the_race(self):
        hb = HbTracker(4)

        def program(comm):
            hb.note_access("cache.state", kind="w", guard="cache._lock")
            comm.barrier()

        run_spmd(4, program, schedule=observer_controller(hb))
        assert hb.report()["clean"]

    def test_mismatched_guards_still_race(self):
        """Two different locks do not order anything."""
        hb = HbTracker(2)

        def program(comm):
            guard = "lock_a" if comm.rank == 0 else "lock_b"
            hb.note_access("split.state", kind="w", guard=guard)
            comm.barrier()

        run_spmd(2, program, schedule=observer_controller(hb))
        report = hb.report()
        assert not report["clean"]
        assert report["findings"][0]["guards"] == ["lock_a", "lock_b"]

    def test_concurrent_reads_are_not_races(self):
        hb = HbTracker(4)

        def program(comm):
            hb.note_access("table.state", kind="r")
            comm.barrier()

        run_spmd(4, program, schedule=observer_controller(hb))
        assert hb.report()["clean"]

    def test_driver_thread_accesses_are_ignored(self):
        hb = HbTracker(2)
        hb.note_access("outside.state", kind="w")  # not on a rank thread
        assert hb.report()["states_audited"] == {}


class TestReportShape:
    def test_report_is_json_safe_and_counts_coverage(self):
        import json

        hb = HbTracker(2)

        def program(comm):
            hb.note_access("a.state", kind="w")
            comm.barrier()

        run_spmd(2, program, schedule=observer_controller(hb))
        report = hb.report()
        json.dumps(report)
        assert report["nranks"] == 2
        assert report["states_audited"] == {"a.state": 2}
        assert report["accesses_dropped"] == 0

    def test_new_run_resets_the_log(self):
        hb = HbTracker(2)

        def program(comm):
            hb.note_access("b.state", kind="w")
            comm.barrier()

        run_spmd(2, program, schedule=observer_controller(hb))
        assert not hb.report()["clean"]
        hb.new_run()
        assert hb.report() == {
            "nranks": 2,
            "states_audited": {},
            "accesses_dropped": 0,
            "findings": [],
            "clean": True,
        }


class TestPlanCacheAudit:
    def test_dft_plan_cache_is_race_free_under_fuzzing(self):
        """The real target: rank threads hammer the dft plan cache
        through the repro backend while the schedule is perturbed; the
        lock-guarded accesses must audit clean."""
        from repro.core.plan import soi_plan_for
        from repro.parallel import soi_fft_distributed

        plan = soi_plan_for(2048, 8, window="digits10")
        gen = np.random.default_rng(17)
        x = gen.standard_normal(2048) + 1j * gen.standard_normal(2048)

        def program(comm):
            block = plan.n // comm.size
            lo = comm.rank * block
            return soi_fft_distributed(
                comm, x[lo : lo + block], plan, backend="repro"
            )

        hb = HbTracker(4)
        restore = install_cache_observers(hb)
        try:
            run_spmd(4, program, schedule=ScheduleController(seed=3, hb=hb))
        finally:
            restore()
        report = hb.report()
        assert "dft.plan_cache" in report["states_audited"]
        assert report["clean"], report["findings"]

    def test_install_cache_observers_restores_previous(self):
        from repro.dft import cache as dft_cache

        hb = HbTracker(2)
        restore = install_cache_observers(hb)
        restore()
        assert dft_cache.set_plan_cache_observer(None) is None
