"""Tests for the differential conformance registry.

The registry is only as good as its coverage and its honesty: it must
enumerate every transform family, hold each row to the documented
tolerance, fail loudly (not skip) when an entry point crashes, and the
edge-geometry sweep must stay inside the Theorem-2 budget at every
boundary configuration.
"""

import json
import math

import numpy as np
import pytest

from repro.check import (
    EXACT_ULP_FACTOR,
    SOI_BUDGET_SAFETY,
    edge_geometries,
    exact_tolerance,
    run_conformance,
    soi_tolerance,
)
from repro.check.conformance import ConformanceReport, _bitwise_row, _oracle_row
from repro.core import SoiPlan, soi_fft
from repro.core.accuracy import error_budget


class TestTolerances:
    def test_exact_tolerance_scales_with_log_n(self):
        eps = np.finfo(np.float64).eps
        assert exact_tolerance(256) == EXACT_ULP_FACTOR * eps * 8.0
        assert exact_tolerance(1024) > exact_tolerance(256)

    def test_soi_tolerance_is_safety_times_budget(self):
        plan = SoiPlan(n=4096, p=8)
        budget = error_budget(plan)["modelled_relative_error"]
        assert soi_tolerance(plan) == SOI_BUDGET_SAFETY * budget


class TestRowMechanics:
    def test_crashing_entry_point_is_a_failure_not_a_skip(self):
        report = ConformanceReport("small")

        def boom():
            raise RuntimeError("kernel exploded")

        _oracle_row(report, "boom", "dft", 8, 1e-12, boom)
        row = report.rows[0]
        assert not row.passed
        assert math.isinf(row.error)
        assert "kernel exploded" in row.detail
        assert not report.ok

    def test_out_of_tolerance_row_fails(self):
        report = ConformanceReport("small")
        _oracle_row(
            report, "off", "dft", 8, 1e-15,
            lambda: (np.ones(8) * 1.001, np.ones(8)),
        )
        assert not report.rows[0].passed

    def test_bitwise_row_rejects_dtype_drift(self):
        """Same values, different dtype: not bitwise equal."""
        report = ConformanceReport("small")
        _bitwise_row(
            report, "drift", "dist", 8,
            lambda: (np.ones(8, np.complex64), np.ones(8, np.complex128)),
        )
        assert not report.rows[0].passed

    def test_bitwise_row_has_zero_tolerance(self):
        report = ConformanceReport("small")
        _bitwise_row(report, "same", "dist", 8, lambda: (np.ones(8), np.ones(8)))
        row = report.rows[0]
        assert row.passed and row.error == 0.0 and row.tolerance == 0.0


class TestRegistry:
    @pytest.fixture(scope="class")
    def report(self):
        return run_conformance("small")

    def test_every_entry_point_passes(self, report):
        assert report.ok, [r.as_dict() for r in report.failures()]

    def test_coverage_floor(self, report):
        """The acceptance floor: at least 12 distinct entry points."""
        assert len(report.rows) >= 12
        names = {r.name for r in report.rows}
        assert len(names) == len(report.rows)  # no duplicate rows

    def test_every_transform_family_is_represented(self, report):
        groups = {r.group for r in report.rows}
        assert {"dft", "nufft", "soi", "soi-edge", "dist"} <= groups

    def test_execute_layout_variants_covered(self, report):
        names = " ".join(r.name for r in report.rows)
        for needle in ("execute_t", "execute_tt", "inverse", "rfft", "irfft",
                       "verify=True", "trace=", "float32"):
            assert needle in names, f"registry lost coverage of {needle}"

    def test_overlap_rows_covered(self, report):
        """The pipelined path is pinned bitwise in the registry: forward
        (both backends), inverse, verify=/trace= transparency, and the
        per-phase traffic-totals row."""
        names = " ".join(r.name for r in report.rows)
        for needle in (
            "soi_fft_distributed[overlap=True,numpy]",
            "soi_fft_distributed[overlap=True,repro]",
            "soi_ifft_distributed[overlap=True]",
            "soi_fft_distributed[overlap=True,verify=True]",
            "soi_fft_distributed[overlap=True,trace=]",
            "soi_overlap_traffic==blocking",
        ):
            assert needle in names, f"registry lost coverage of {needle}"
        overlap_rows = [r for r in report.rows if "overlap" in r.name]
        assert all(r.tolerance == 0.0 for r in overlap_rows)

    def test_report_roundtrips_through_json(self, report):
        d = json.loads(json.dumps(report.as_dict()))
        assert d["schema"] == "repro.check.conformance/1"
        assert d["ok"] is True
        assert d["summary"]["entry_points"] == len(report.rows)
        assert d["summary"]["failed"] == 0

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            run_conformance("enormous")


class TestEdgeGeometries:
    """Satellite sweep: odd segment counts, every beta, minimal N."""

    GEOMETRIES = list(edge_geometries())

    def test_sweep_is_exhaustive(self):
        # 3 windows x 3 betas x 3 odd segment counts.
        assert len(self.GEOMETRIES) == 27
        assert {g["p"] for g in self.GEOMETRIES} == {3, 5, 7}

    @pytest.mark.parametrize(
        "geo", GEOMETRIES,
        ids=[f"{g['window']}-b{g['beta']}-p{g['p']}" for g in GEOMETRIES],
    )
    def test_minimal_geometry_within_theorem2_budget(self, geo):
        plan = SoiPlan(
            n=geo["n"], p=geo["p"], beta=geo["beta"], window=geo["window"]
        )
        # The generator's N really is minimal: one nu-chunk less and the
        # stencil no longer fits a segment.
        assert plan.m == geo["nu"] * math.ceil(geo["b"] / geo["nu"])
        gen = np.random.default_rng(geo["n"] * 31 + geo["p"])
        x = gen.standard_normal(plan.n) + 1j * gen.standard_normal(plan.n)
        ref = np.fft.fft(x)
        err = np.linalg.norm(soi_fft(x, plan) - ref) / np.linalg.norm(ref)
        assert err <= soi_tolerance(plan)

    def test_both_backends_within_budget_on_an_edge_geometry(self):
        """Odd P forces the repro backend through its non-power-of-two
        kernels (mixed-radix / Bluestein for F_7); both backends must
        still land inside the same Theorem-2 bound."""
        geo = next(g for g in self.GEOMETRIES if g["p"] == 7)
        plan = SoiPlan(
            n=geo["n"], p=geo["p"], beta=geo["beta"], window=geo["window"]
        )
        gen = np.random.default_rng(7)
        x = gen.standard_normal(plan.n) + 1j * gen.standard_normal(plan.n)
        ref = np.fft.fft(x)
        for backend in ("numpy", "repro"):
            err = np.linalg.norm(
                soi_fft(x, plan, backend=backend) - ref
            ) / np.linalg.norm(ref)
            assert err <= soi_tolerance(plan), backend
