"""Tests for workload generators."""

import numpy as np
import pytest

from repro.bench.workloads import (
    chirp_signal,
    multitone,
    noisy_tones,
    random_complex,
    random_real,
)


class TestRandom:
    def test_deterministic_by_seed(self):
        np.testing.assert_array_equal(random_complex(64, 1), random_complex(64, 1))

    def test_different_seeds_differ(self):
        assert not np.array_equal(random_complex(64, 1), random_complex(64, 2))

    def test_complex_has_both_parts(self):
        x = random_complex(1000, 3)
        assert np.std(x.real) > 0.5 and np.std(x.imag) > 0.5

    def test_real_is_complex_dtype_zero_imag(self):
        x = random_real(100, 4)
        assert x.dtype == np.complex128
        np.testing.assert_array_equal(x.imag, 0.0)


class TestMultitone:
    def test_spectrum_is_exact_lines(self):
        x = multitone(64, [3, 10], [2.0, 0.5])
        y = np.fft.fft(x)
        assert y[3] == pytest.approx(2.0 * 64)
        assert y[10] == pytest.approx(0.5 * 64)
        mask = np.ones(64, bool)
        mask[[3, 10]] = False
        assert np.max(np.abs(y[mask])) < 1e-10

    def test_negative_frequency_wraps(self):
        x = multitone(32, [-1])
        y = np.fft.fft(x)
        assert abs(y[31]) == pytest.approx(32.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            multitone(32, [1, 2], [1.0])


class TestChirp:
    def test_unit_modulus(self):
        x = chirp_signal(256)
        np.testing.assert_allclose(np.abs(x), 1.0, atol=1e-12)

    def test_broadband(self):
        """A chirp spreads energy over many bins (not a line spectrum)."""
        y = np.abs(np.fft.fft(chirp_signal(512)))
        occupied = np.sum(y > 0.1 * y.max())
        assert occupied > 50


class TestNoisyTones:
    def test_snr_calibration(self):
        x = noisy_tones(4096, [100], snr_db=20.0, seed=1)
        sig = multitone(4096, [100])
        noise = x - sig
        measured = 10 * np.log10(np.mean(np.abs(sig) ** 2) / np.mean(np.abs(noise) ** 2))
        assert measured == pytest.approx(20.0, abs=1.0)

    def test_tone_detectable(self):
        x = noisy_tones(1024, [50], snr_db=30.0, seed=2)
        y = np.abs(np.fft.fft(x))
        assert y.argmax() == 50
