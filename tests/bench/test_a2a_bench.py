"""Tests for the all-to-all schedule benchmark (the BENCH_PR8.json payload).

Honesty standard: every traffic number is a measured TrafficStats
counter, every cell re-checked bitwise equality against pairwise, the
measured message counts match the analytic model, and the payload is
JSON-safe.
"""

import json

import pytest

from repro.bench import A2A_BENCH_SCHEMA, run_a2a_bench
from repro.simmpi import predicted_inter_node_messages


@pytest.fixture(scope="module")
def payload():
    return run_a2a_bench(quick=True, reps=2)


class TestPayloadSchema:
    def test_schema_tag(self, payload):
        assert payload["schema"] == A2A_BENCH_SCHEMA

    def test_json_serialisable(self, payload):
        assert json.loads(json.dumps(payload)) == payload

    def test_top_level_sections(self, payload):
        assert set(payload) >= {
            "schema", "generated_by", "config", "shapes", "soi", "headline",
        }

    def test_config_records_the_setup(self, payload):
        cfg = payload["config"]
        assert cfg["nranks"] == 16
        assert cfg["algorithms"] == ["pairwise", "bruck", "hierarchical"]
        assert {s["ranks_per_node"] for s in cfg["node_shapes"]} == {4, 2}
        assert cfg["fabric_header_bytes"] == 64
        assert cfg["message_overhead_s"] > 0


class TestMeasurements:
    def test_every_cell_bitwise_equal_and_model_exact(self, payload):
        for shape in payload["shapes"]:
            for cell in shape["cells"]:
                for algorithm in payload["config"]["algorithms"]:
                    t = cell[algorithm]
                    assert t["bitwise_equal_to_pairwise"]
                    assert t["messages_match_model"]
                    assert t["inter_node_messages"] == (
                        predicted_inter_node_messages(
                            16, shape["ranks_per_node"], algorithm
                        )
                    )

    def test_traffic_deterministic_across_reps(self, payload):
        assert payload["traffic_stable_across_reps"] is True

    def test_acceptance_hierarchical_wins_both_shapes(self, payload):
        # The PR-8 acceptance criterion: hierarchical beats pairwise on
        # measured inter-node bytes AND modelled fat-tree time at both
        # node shapes.
        assert len(payload["shapes"]) == 2
        for shape in payload["shapes"]:
            h = shape["headline"]
            assert h["hierarchical_wins"]
            assert h["inter_node_bytes_ratio"] > 1.0
            assert h["modelled_time_ratio"] > 1.0
        assert payload["headline"]["hierarchical_wins_all_shapes"]

    def test_message_collapse_ratio(self, payload):
        by_rpn = {s["ranks_per_node"]: s for s in payload["shapes"]}
        # 4 nodes x 4 ranks: 192 pairwise inter-node messages vs 12.
        h = by_rpn[4]["headline"]
        assert h["inter_node_messages_ratio"] == 16.0

    def test_soi_section_end_to_end(self, payload):
        soi = payload["soi"]
        assert soi["hierarchical"]["bitwise_equal_to_pairwise"]
        assert soi["hierarchical_wins"]
        assert (
            soi["hierarchical"]["alltoall_phase_inter_node_messages"]
            < soi["pairwise"]["alltoall_phase_inter_node_messages"]
        )
