"""Tests for the ASCII table/series/bar printers."""

from repro.bench.tables import bar_chart, format_series, format_table


class TestFormatTable:
    def test_includes_headers_and_rows(self):
        text = format_table(["a", "bb"], [[1, 2.5], [33, 4.123456]])
        assert "a" in text and "bb" in text
        assert "33" in text

    def test_title_first_line(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_rule_under_header(self):
        lines = format_table(["col"], [[1]]).splitlines()
        assert set(lines[1]) == {"-"}

    def test_large_floats_use_thousands_separator(self):
        assert "1,234" in format_table(["v"], [[1234.0]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_pairs_rendered(self):
        text = format_series("speedup", [2, 4], [1.5, 1.75])
        assert text.startswith("speedup:")
        assert "2:1.5" in text and "4:1.75" in text


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title(self):
        assert bar_chart(["x"], [1.0], title="T").splitlines()[0] == "T"

    def test_zero_values(self):
        text = bar_chart(["x"], [0.0])
        assert "#" not in text
