"""Tests for the autotuner gate bench (``python -m repro bench-tune``).

The quick profile races two small shapes but exercises every payload
section: per-shape tuned-vs-default ratios with the never-regress
guarantees, the halved-wire byte ratios, the wisdom round-trip, and the
bitwise-dispatch consistency block.
"""

import json

import pytest

from repro.bench import TUNE_BENCH_SCHEMA, run_tune


@pytest.fixture(scope="module")
def payload():
    return run_tune(quick=True, reps=1)


class TestPayloadSchema:
    def test_schema_tag(self, payload):
        assert payload["schema"] == TUNE_BENCH_SCHEMA

    def test_json_serialisable(self, payload):
        assert json.loads(json.dumps(payload)) == payload

    def test_top_level_sections(self, payload):
        assert set(payload) >= {
            "schema", "config", "headline", "shapes", "wire", "wisdom",
            "consistency",
        }


class TestRatios:
    def test_no_shape_regresses(self, payload):
        """The acceptance floor: tuned >= 1.0x the default everywhere."""
        for row in payload["shapes"]:
            assert row["ratio"] >= 1.0
        assert payload["consistency"]["all_ratios_at_least_one"]

    def test_default_winners_report_identity_ratio(self, payload):
        for row in payload["shapes"]:
            if not row["measured"]:
                assert row["ratio"] == 1.0
                assert row["config"]["variant"] == "radix2"

    def test_headline_is_max_ratio(self, payload):
        best = max(r["ratio"] for r in payload["shapes"])
        assert payload["headline"]["ratio"] == best

    def test_dispatch_is_bitwise(self, payload):
        for row in payload["shapes"]:
            assert row["dispatch_bitwise"]
        assert payload["consistency"]["dispatch_bitwise"]


class TestWire:
    def test_both_paths_halve_the_alltoall(self, payload):
        wire = payload["wire"]
        assert wire["complex64_ratio"] <= 0.55
        assert wire["rfft_ratio"] <= 0.55
        # The measured structure is exact halving, not just under cap.
        assert wire["complex64_alltoall_bytes"] * 2 == wire[
            "complex128_alltoall_bytes"
        ]
        assert wire["rfft_alltoall_bytes"] * 2 == wire[
            "complex128_alltoall_bytes"
        ]


class TestWisdom:
    def test_roundtrip_survives(self, payload):
        wis = payload["wisdom"]
        assert wis["load_status"] == "ok"
        assert wis["saved_entries"] == len(payload["shapes"])
        assert wis["loaded_entries"] == wis["saved_entries"]
        assert wis["roundtrip_exact"]
