"""Tests for the overlap benchmark harness (the BENCH_PR5.json payload).

The harness is held to the same honesty standard as bench-micro: every
headline number is a real measurement, the payload is JSON-safe, the
bitwise check really ran, and the zero-link regime is reported rather
than hidden.
"""

import json

import pytest

from repro.bench import (
    LINK_BANDWIDTH,
    LINK_LATENCY,
    OVERLAP_BENCH_SCHEMA,
    run_overlap_bench,
)


@pytest.fixture(scope="module")
def payload():
    return run_overlap_bench(quick=True, reps=2)


class TestPayloadSchema:
    def test_schema_tag(self, payload):
        assert payload["schema"] == OVERLAP_BENCH_SCHEMA

    def test_json_serialisable(self, payload):
        assert json.loads(json.dumps(payload)) == payload

    def test_top_level_sections(self, payload):
        assert set(payload) >= {
            "schema",
            "generated_by",
            "config",
            "headline",
            "zero_link",
            "request_depth",
            "virtual_replay",
        }

    def test_config_records_the_interconnect(self, payload):
        cfg = payload["config"]
        assert cfg["n"] == 4096 and cfg["p"] == 4 and cfg["nranks"] == 4
        assert cfg["link_bandwidth_bytes_per_s"] == LINK_BANDWIDTH
        assert cfg["link_latency_s"] == LINK_LATENCY
        assert "perf_counter_ns" in cfg["timer"]

    def test_headline_is_measured_and_bitwise(self, payload):
        h = payload["headline"]
        assert h["blocking_us"] > 0 and h["pipelined_us"] > 0
        assert h["speedup"] == h["blocking_us"] / h["pipelined_us"]
        assert h["bitwise_equal"] is True

    def test_zero_link_regime_reported(self, payload):
        z = payload["zero_link"]
        assert z["blocking_us"] > 0 and z["pipelined_us"] > 0
        assert "overhead" in z["note"]

    def test_request_depth_shows_pipelining(self, payload):
        depth = payload["request_depth"]
        assert depth["alltoall"]["max_outstanding"] > 1
        at = depth["alltoall"]["time_at_depth"]
        assert all(isinstance(k, str) for k in at)
        assert sum(at.values()) > 0

    def test_virtual_replay_compares_both_paths(self, payload):
        vr = payload["virtual_replay"]
        assert vr["blocking"]["makespan_us"] > 0
        assert vr["pipelined"]["makespan_us"] > 0
        # The acceptance criterion: strictly less alltoall stall time
        # attributed to the overlapped run under the same cost model.
        blk = vr["blocking"]["critical_path_stall_us"].get("alltoall", 0.0)
        ovl = vr["pipelined"]["critical_path_stall_us"].get("alltoall", 0.0)
        assert ovl < blk
        assert vr["alltoall_stall_strictly_less"] is True

    def test_pipelined_replay_shows_inflight_depth(self, payload):
        inflight = payload["virtual_replay"]["pipelined"]["inflight"]
        assert inflight["alltoall"]["max_depth"] > 1


class TestCliIntegration:
    def test_bench_overlap_writes_json(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "bench_overlap.json"
        assert main(["bench-overlap", "--bench-quick", "--bench-reps", "1",
                     "--bench-out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "bench-overlap" in text
        assert "pipelined" in text
        written = json.loads(out.read_text())
        assert written["schema"] == OVERLAP_BENCH_SCHEMA
        assert written["headline"]["bitwise_equal"] is True
