"""Tests for the DES weak-scaling benchmark (the BENCH_PR9.json payload).

Honesty standard: every wall second is measured on an executed run,
every traffic number is a measured TrafficStats counter pinned exactly
to the Section 7.4 analytic model, outputs and virtual clocks are
stable across reps, and the small-world anchor proves DES == threads
bitwise.  The payload is JSON-safe.
"""

import json

import pytest

from repro.bench import SCALE_BENCH_SCHEMA, run_scale_bench
from repro.bench.scale import scale_plan
from repro.simmpi import predicted_inter_node_messages


@pytest.fixture(scope="module")
def payload():
    return run_scale_bench(quick=True, reps=2)


class TestPayloadSchema:
    def test_schema_tag(self, payload):
        assert payload["schema"] == SCALE_BENCH_SCHEMA

    def test_json_serialisable(self, payload):
        assert json.loads(json.dumps(payload)) == payload

    def test_top_level_sections(self, payload):
        assert set(payload) >= {
            "schema", "generated_by", "config", "runs", "engine_anchor",
            "headline",
        }

    def test_config_records_the_setup(self, payload):
        cfg = payload["config"]
        assert cfg["engine"] == "des"
        assert cfg["alltoall_algorithm"] == "hierarchical"
        assert cfg["quick"] is True and cfg["reps"] == 2
        assert cfg["fabric_header_bytes"] == 64
        assert [p["nranks"] for p in cfg["points"]] == [64, 256]


class TestMeasurements:
    def test_every_point_matches_the_traffic_model(self, payload):
        for run in payload["runs"]:
            t = run["traffic"]
            assert t["messages_match_model"], run["nranks"]
            assert t["bytes_match_model"], run["nranks"]
            assert t["inter_node_messages"] == predicted_inter_node_messages(
                run["nranks"], run["ranks_per_node"], "hierarchical"
            )

    def test_messages_follow_the_node_pair_law(self, payload):
        for run in payload["runs"]:
            nodes = run["nodes"]
            assert run["traffic"]["inter_node_messages"] == nodes * (nodes - 1)

    def test_wall_clocks_are_real_and_ordered(self, payload):
        for run in payload["runs"]:
            assert run["cold_wall_s"] > 0
            assert 0 < run["steady_wall_s"] <= run["cold_wall_s"] * 10
            assert len(run["wall_s_per_rep"]) == 2
            assert run["cold_wall_s"] == run["wall_s_per_rep"][0]

    def test_runs_deterministic_across_reps(self, payload):
        for run in payload["runs"]:
            assert run["outputs_stable"], run["nranks"]
            assert run["virtual_time_stable"], run["nranks"]
            assert run["virtual_time_s"] > 0

    def test_engine_anchor_pins_the_differential_invariant(self, payload):
        anchor = payload["engine_anchor"]
        assert anchor["bitwise_equal"]
        assert anchor["stats_equal"]
        assert anchor["thread_wall_s"] > 0 and anchor["des_wall_s"] > 0

    def test_headline_summarises_the_largest_point(self, payload):
        head = payload["headline"]
        largest = payload["runs"][-1]
        assert str(largest["nranks"]) in head["name"]
        assert head["cold_wall_s"] == largest["cold_wall_s"]
        assert head["traffic_matches_model_all_points"]
        assert head["engines_bitwise_equal"]


class TestPlanFamily:
    def test_weak_scaling_geometry(self):
        for P in (64, 256):
            plan = scale_plan(P)
            assert plan.n == P * P
            assert plan.p == P
            assert plan.n % P == 0
