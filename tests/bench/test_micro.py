"""Tests for the measured-wall-clock microbenchmark harness.

The quick profile keeps this cheap enough for CI while still exercising
every section of the payload: SOI races (engine vs the frozen pre-PR
baseline), kernel races, the 4-rank distributed timing, and the
consistency block that guards the numerical contract.
"""

import json

import pytest

from repro.bench import BENCH_SCHEMA, run_micro


@pytest.fixture(scope="module")
def payload():
    return run_micro(quick=True, reps=2)


class TestPayloadSchema:
    def test_schema_tag(self, payload):
        assert payload["schema"] == BENCH_SCHEMA

    def test_json_serialisable(self, payload):
        assert json.loads(json.dumps(payload)) == payload

    def test_top_level_sections(self, payload):
        assert set(payload) >= {
            "schema",
            "config",
            "headline",
            "soi",
            "kernels",
            "distributed",
            "consistency",
        }

    def test_headline_fields(self, payload):
        headline = payload["headline"]
        for key in (
            "name",
            "engine_hit_us",
            "baseline_noreuse_us",
            "baseline_percall_us",
            "speedup",
            "speedup_vs_warm_baseline",
        ):
            assert key in headline
        assert headline["engine_hit_us"] > 0
        assert headline["speedup"] == pytest.approx(
            headline["baseline_noreuse_us"] / headline["engine_hit_us"]
        )

    def test_soi_rows_are_measured(self, payload):
        assert payload["soi"]
        for row in payload["soi"]:
            assert row["engine_hit_us"] > 0
            assert row["baseline_noreuse_us"] > 0
            assert row["engine_vs_baseline_max_rel"] < 4e-16

    def test_kernel_rows_bit_identical(self, payload):
        assert payload["kernels"]
        for row in payload["kernels"]:
            assert row["bit_identical_to_baseline"] is True
            assert row["engine_hit_us"] > 0

    def test_distributed_row(self, payload):
        dist = payload["distributed"]
        assert dist["nranks"] == 4
        assert dist["bitwise_equal_to_sequential"] is True
        assert dist["engine_dist_us"] > 0

    def test_consistency_block(self, payload):
        cons = payload["consistency"]
        assert cons["kernels_bit_identical"] is True
        assert cons["dist_bitwise_equal_to_sequential"] is True
        assert cons["engine_vs_baseline_max_rel"] < 4e-16


class TestCliIntegration:
    def test_bench_micro_writes_json(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "bench.json"
        assert main(["bench-micro", "--bench-quick", "--bench-reps", "1",
                     "--bench-out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "bench-micro" in text
        written = json.loads(out.read_text())
        assert written["schema"] == BENCH_SCHEMA
