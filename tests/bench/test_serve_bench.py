"""Tests for the serving benchmark harness (quick profile).

``reps=1`` keeps the closed loops at one request per client — enough to
exercise every section (cases, overload, cache, consistency) and pin
the payload schema without asserting on throughput numbers, which a
loaded CI box cannot promise.  The structural guarantees (every ticket
resolved, counters consistent, bitwise consistency rows green) must
hold at any speed.
"""

import json

import pytest

from repro.bench import SERVE_BENCH_SCHEMA, run_serve_bench


@pytest.fixture(scope="module")
def payload():
    return run_serve_bench(quick=True, reps=1)


class TestPayloadSchema:
    def test_schema_tag(self, payload):
        assert payload["schema"] == SERVE_BENCH_SCHEMA

    def test_json_serialisable(self, payload):
        assert json.loads(json.dumps(payload)) == payload

    def test_top_level_sections(self, payload):
        assert set(payload) >= {
            "schema", "config", "cases", "headline",
            "overload", "cache", "consistency",
        }

    def test_config_records_the_closed_loop(self, payload):
        cfg = payload["config"]
        assert cfg["quick"] is True
        assert cfg["clients"] >= 64
        assert cfg["per_client"] == 1
        assert "perf_counter" in cfg["timer"]


class TestCases:
    def test_every_case_ran_both_modes(self, payload):
        assert {c["name"] for c in payload["cases"]} == {
            "serve-transpose-4096", "serve-dft-numpy-4096", "serve-dft-repro-256",
        }
        for case in payload["cases"]:
            for mode in ("batched", "serial"):
                run = case[mode]
                assert run["completed"] == case["requests"]
                assert run["client_errors"] == 0
                assert run["throughput_rps"] > 0
            assert case["speedup"] > 0

    def test_serial_mode_never_batches(self, payload):
        for case in payload["cases"]:
            assert case["serial"]["max_batch_size"] == 1

    def test_headline_is_the_distributed_transpose(self, payload):
        headline = payload["headline"]
        assert headline["name"] == "serve-transpose-4096"
        assert isinstance(headline["meets_3x"], bool)
        assert headline["speedup"] == pytest.approx(
            headline["batched_rps"] / headline["serial_rps"]
        )
        (case,) = [c for c in payload["cases"] if c["headline"]]
        assert case["n"] == 4096 and case["backend"] == "transpose"

    def test_per_class_slo_percentiles_present(self, payload):
        for case in payload["cases"]:
            classes = case["batched"]["classes"]
            assert {"interactive", "batch", "best_effort"} <= set(classes)
            for cls in classes.values():
                assert cls["p50_ms"] <= cls["p95_ms"] <= cls["p99_ms"]


class TestOverload:
    def test_every_submission_resolved_and_typed(self, payload):
        over = payload["overload"]
        outcomes = over["outcomes"]
        assert over["hangs"] == 0
        assert over["all_resolved"] is True
        assert over["rejected_sync"] + sum(outcomes.values()) == over["submitted"]
        assert outcomes["other_error"] == 0

    def test_admission_counters_match_ticket_outcomes(self, payload):
        assert payload["overload"]["counters_match"] is True

    def test_overload_actually_overloaded(self, payload):
        over = payload["overload"]
        assert over["rejected_sync"] + over["outcomes"]["shed"] > 0


class TestCacheAndConsistency:
    def test_warmed_server_serves_without_in_band_builds(self, payload):
        cache = payload["cache"]
        assert cache["warmup"]["shapes"]["built"] >= 0
        assert cache["misses_during_serving"] == 0
        assert cache["all_hits"] is True

    def test_conformance_rows_are_bitwise_green(self, payload):
        consistency = payload["consistency"]
        assert consistency["bitwise_ok"] is True
        names = [row["name"] for row in consistency["rows"]]
        assert any("execute_batch" in name for name in names)
        assert any("serve.server" in name for name in names)
        assert all(row["passed"] for row in consistency["rows"])
