"""Tests for the shared figure-benchmark runner."""

import numpy as np

from repro.bench import measured_traffic, run_figure_sweep
from repro.cluster import cluster
from repro.core import snr_db


class TestRunFigureSweep:
    def test_produces_table_and_series(self):
        fig = run_figure_sweep(
            "Fig X", cluster("endeavor"), [2, 4], ["SOI", "MKL"]
        )
        assert "Fig X" in fig.text
        assert "speedup SOI over MKL" in fig.text
        assert ("SOI", 2) in fig.sweep.points

    def test_custom_points_per_node(self):
        fig = run_figure_sweep(
            "small", cluster("gordon"), [2], ["SOI", "MKL"], points_per_node=1 << 20
        )
        assert fig.sweep.points[("SOI", 2)].breakdown.n_total == 2 << 20


class TestMeasuredTraffic:
    def test_both_algorithms_correct(self, full_plan):
        facts = measured_traffic(full_plan.n, 4, plan=full_plan)
        assert snr_db(facts["soi_result"], facts["reference"]) > 280.0
        assert snr_db(facts["std_result"], facts["reference"]) > 290.0

    def test_round_counts(self, full_plan):
        facts = measured_traffic(full_plan.n, 4, plan=full_plan)
        assert facts["soi_alltoall_rounds"] == 1
        assert facts["std_alltoall_rounds"] == 3

    def test_volume_ratio_approaches_paper_claim(self, full_plan):
        """SOI moves ~(1+beta)/3 of the baseline's all-to-all volume
        (plus the tiny halo)."""
        facts = measured_traffic(full_plan.n, 4, plan=full_plan)
        soi_a2a = facts["soi_stats"].phase("alltoall").total_bytes
        std_total = sum(
            facts["std_stats"].phase(p).total_bytes
            for p in ("transpose-1", "transpose-2", "transpose-3")
        )
        ratio = soi_a2a / std_total
        assert abs(ratio - 1.25 / 3.0) < 0.01


class TestTraceRollups:
    def test_structural_story_in_rollups(self):
        from repro.bench import trace_rollups

        tr = trace_rollups()
        assert tr["soi"]["alltoall_epochs"] == 1
        assert tr["transpose"]["alltoall_epochs"] == 3
        for agg in tr.values():
            assert agg["makespan_s"] > 0.0
            assert agg["critical_path"]["coverage"] >= 0.95

    def test_cached_per_problem_shape(self):
        from repro.bench import trace_rollups

        assert trace_rollups() is trace_rollups()
        assert trace_rollups(n=1 << 13, nranks=4) is not trace_rollups()

    def test_figure_sweeps_carry_trace_extras(self):
        import json

        fig = run_figure_sweep("Fig T", cluster("endeavor"), [2], ["SOI", "MKL"])
        trace = fig.extras["trace"]
        assert set(trace) == {"soi", "transpose"}
        json.dumps(trace)  # JSON-safe for the --json CLI payloads
